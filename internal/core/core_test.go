package core

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"

	"sdpfloor/internal/geom"
	"sdpfloor/internal/linalg"
	"sdpfloor/internal/netlist"
	"sdpfloor/internal/sdp"
)

// chainNL builds n unit-area modules in a chain with two pads at (±span, 0).
func chainNL(n int, span float64) *netlist.Netlist {
	nl := &netlist.Netlist{}
	for i := 0; i < n; i++ {
		nl.Modules = append(nl.Modules, netlist.Module{
			Name: "m", MinArea: 1, MaxAspect: 3,
		})
	}
	for i := 0; i+1 < n; i++ {
		nl.Nets = append(nl.Nets, netlist.Net{Name: "n", Weight: 1, Modules: []int{i, i + 1}})
	}
	nl.Pads = []netlist.Pad{
		{Name: "pl", Pos: geom.Point{X: -span, Y: 0}},
		{Name: "pr", Pos: geom.Point{X: span, Y: 0}},
	}
	nl.Nets = append(nl.Nets,
		netlist.Net{Name: "pnl", Weight: 1, Modules: []int{0}, Pads: []int{0}},
		netlist.Net{Name: "pnr", Weight: 1, Modules: []int{n - 1}, Pads: []int{1}},
	)
	return nl
}

func TestSolveTwoModulesWithPads(t *testing.T) {
	nl := chainNL(2, 4)
	res, err := Solve(nl, Options{MaxIter: 20})
	if err != nil {
		t.Fatal(err)
	}
	if !res.RankOK {
		t.Fatalf("rank constraint not satisfied: <W,Z> = %g", res.WZ)
	}
	// The two modules must respect the distance constraint r0 + r1 = 1.
	d := res.Centers[0].Dist(res.Centers[1])
	if d < 1-1e-3 {
		t.Fatalf("distance %g violates bound 1", d)
	}
	// Pulled by the pads, module 0 should be left of module 1.
	if res.Centers[0].X >= res.Centers[1].X {
		t.Fatalf("ordering wrong: %v", res.Centers)
	}
	// Centers stay within the pad span.
	for _, c := range res.Centers {
		if math.Abs(c.X) > 4+1e-6 || math.Abs(c.Y) > 4+1e-6 {
			t.Fatalf("center out of range: %v", c)
		}
	}
}

func TestSolveDistanceConstraintsAllPairs(t *testing.T) {
	nl := chainNL(5, 6)
	res, err := Solve(nl, Options{MaxIter: 15})
	if err != nil {
		t.Fatal(err)
	}
	radii := nl.Radii(false)
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			d := res.Centers[i].DistSq(res.Centers[j])
			bound := (radii[i] + radii[j]) * (radii[i] + radii[j])
			if d < bound*(1-1e-2) {
				t.Fatalf("pair (%d,%d): D = %g < bound %g", i, j, d, bound)
			}
		}
	}
}

func TestSolveRankTwoAchieved(t *testing.T) {
	nl := chainNL(4, 5)
	res, err := Solve(nl, Options{MaxIter: 25})
	if err != nil {
		t.Fatal(err)
	}
	if !res.RankOK {
		t.Fatalf("rank constraint not reached; <W,Z>=%g alpha=%g", res.WZ, res.AlphaFinal)
	}
	if res.Rank > 2 {
		t.Fatalf("numerical rank %d > 2", res.Rank)
	}
	// With rank 2 achieved, G == XᵀX: check G_ii ≈ ‖xᵢ‖².
	for i, c := range res.Centers {
		gii := res.Z.At(2+i, 2+i)
		n2 := c.X*c.X + c.Y*c.Y
		if math.Abs(gii-n2) > 1e-2*(1+n2) {
			t.Fatalf("G[%d][%d] = %g but ‖x‖² = %g", i, i, gii, n2)
		}
	}
}

func TestSolvePPMKeepsModuleFixed(t *testing.T) {
	nl := chainNL(3, 4)
	nl.Modules[1].Fixed = true
	nl.Modules[1].FixedPos = geom.Point{X: 0.5, Y: 0.25}
	res, err := Solve(nl, Options{MaxIter: 20})
	if err != nil {
		t.Fatal(err)
	}
	got := res.Centers[1]
	if math.Abs(got.X-0.5) > 1e-4 || math.Abs(got.Y-0.25) > 1e-4 {
		t.Fatalf("fixed module moved to %v", got)
	}
}

func TestSolveOutlineRespected(t *testing.T) {
	nl := chainNL(3, 10)
	out := geom.Rect{MinX: -2, MinY: -2, MaxX: 2, MaxY: 2}
	res, err := Solve(nl, Options{MaxIter: 20, Outline: &out})
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range res.Centers {
		if c.X < out.MinX-1e-6 || c.X > out.MaxX+1e-6 || c.Y < out.MinY-1e-6 || c.Y > out.MaxY+1e-6 {
			t.Fatalf("module %d center %v escapes outline", i, c)
		}
	}
}

func TestSolveLazyMatchesFull(t *testing.T) {
	nl := chainNL(5, 6)
	full, err := Solve(nl, Options{MaxIter: 12})
	if err != nil {
		t.Fatal(err)
	}
	lazy, err := Solve(nl, Options{MaxIter: 12, LazyConstraints: true})
	if err != nil {
		t.Fatal(err)
	}
	// Same final objective within a small relative tolerance.
	if math.Abs(full.Objective-lazy.Objective) > 0.05*(1+math.Abs(full.Objective)) {
		t.Fatalf("lazy objective %g vs full %g", lazy.Objective, full.Objective)
	}
	// And the lazy solution is feasible for every pair.
	radii := nl.Radii(false)
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			d := lazy.Centers[i].DistSq(lazy.Centers[j])
			bound := (radii[i] + radii[j]) * (radii[i] + radii[j])
			if d < bound*(1-1e-2) {
				t.Fatalf("lazy pair (%d,%d) violated: %g < %g", i, j, d, bound)
			}
		}
	}
}

func TestDirectionMatrixClosedFormMatchesSDP(t *testing.T) {
	// Cross-check the Ky-Fan closed form of sub-problem 2 against solving
	// Eq. 19 with the interior-point solver on a random Z.
	rng := rand.New(rand.NewSource(11))
	dim, n := 5, 3
	z := linalg.NewDense(dim, dim)
	for i := 0; i < dim; i++ {
		for j := i; j < dim; j++ {
			v := rng.NormFloat64()
			z.Set(i, j, v)
			z.Set(j, i, v)
		}
	}
	w, wz, err := DirectionMatrix(z, n)
	if err != nil {
		t.Fatal(err)
	}
	// W properties: 0 ⪯ W ⪯ I, tr W = n.
	if math.Abs(w.Trace()-float64(n)) > 1e-9 {
		t.Fatalf("tr W = %g, want %d", w.Trace(), n)
	}
	eg, err := linalg.NewSymEig(w)
	if err != nil {
		t.Fatal(err)
	}
	if eg.MinEigenvalue() < -1e-9 || eg.MaxEigenvalue() > 1+1e-9 {
		t.Fatalf("W eigenvalues out of [0,1]: %v", eg.Values)
	}
	if math.Abs(linalg.InnerProd(w, z)-wz) > 1e-9*(1+math.Abs(wz)) {
		t.Fatalf("reported <W,Z> %g != actual %g", wz, linalg.InnerProd(w, z))
	}

	// SDP formulation: min ⟨Z,W⟩, 0 ⪯ W, I−W ⪯... encoded as W + T = I.
	var cons []sdp.Constraint
	for i := 0; i < dim; i++ {
		for j := i; j < dim; j++ {
			rhs := 0.0
			if i == j {
				rhs = 1
			}
			cons = append(cons, sdp.Constraint{
				PSD: [][]sdp.Entry{{{I: i, J: j, V: 1}}, {{I: i, J: j, V: 1}}},
				B:   rhs,
			})
		}
	}
	tr := make([]sdp.Entry, dim)
	for i := 0; i < dim; i++ {
		tr[i] = sdp.Entry{I: i, J: i, V: 1}
	}
	cons = append(cons, sdp.Constraint{PSD: [][]sdp.Entry{tr}, B: float64(n)})
	prob := &sdp.Problem{
		PSDDims: []int{dim, dim},
		C:       []*linalg.Dense{z, linalg.NewDense(dim, dim)},
		Cons:    cons,
	}
	sol, err := sdp.SolveIPM(prob, sdp.IPMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != sdp.StatusOptimal {
		t.Fatalf("IPM status %v", sol.Status)
	}
	if math.Abs(sol.PrimalObj-wz) > 1e-5*(1+math.Abs(wz)) {
		t.Fatalf("SDP sub-problem 2 objective %g != closed form %g", sol.PrimalObj, wz)
	}
}

func TestExtractBestRank2RecoversGeometry(t *testing.T) {
	// Build Z from a known rank-2 configuration; best-rank-2 extraction must
	// reproduce pairwise distances.
	pts := []geom.Point{{X: 0, Y: 0}, {X: 2, Y: 0}, {X: 1, Y: 2}}
	n := len(pts)
	z := linalg.NewDense(n+2, n+2)
	z.Set(0, 0, 1)
	z.Set(1, 1, 1)
	for i, p := range pts {
		z.Set(0, 2+i, p.X)
		z.Set(2+i, 0, p.X)
		z.Set(1, 2+i, p.Y)
		z.Set(2+i, 1, p.Y)
		for j, q := range pts {
			z.Set(2+i, 2+j, p.X*q.X+p.Y*q.Y)
		}
	}
	got, err := ExtractBestRank2(z)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			want := pts[i].Dist(pts[j])
			have := got[i].Dist(got[j])
			if math.Abs(want-have) > 1e-8 {
				t.Fatalf("pair (%d,%d): distance %g, want %g", i, j, have, want)
			}
		}
	}
	// ExtractCenters reproduces the X block exactly.
	cs := ExtractCenters(z)
	for i := range pts {
		if cs[i] != pts[i] {
			t.Fatalf("ExtractCenters[%d] = %v, want %v", i, cs[i], pts[i])
		}
	}
}

func TestDistanceBoundReducesToBasic(t *testing.T) {
	// Eq. 26 with k = 1 must equal Eq. 11.
	radii := []float64{1, 2}
	aspect := []float64{1, 1}
	a := linalg.NewDenseFrom([][]float64{{0, 3}, {3, 0}})
	deg := netlist.Degrees(a)
	got := distanceBound(0, 1, radii, aspect, a, deg, true)
	want := (radii[0] + radii[1]) * (radii[0] + radii[1])
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("bound = %g, want %g", got, want)
	}
}

func TestDistanceBoundTightensWithConnectivity(t *testing.T) {
	// A strongly connected neighbour is allowed closer than a weak one.
	radii := []float64{1, 1, 1}
	aspect := []float64{3, 3, 3}
	a := linalg.NewDenseFrom([][]float64{
		{0, 10, 1},
		{10, 0, 0},
		{1, 0, 0},
	})
	deg := netlist.Degrees(a)
	strong := distanceBound(0, 1, radii, aspect, a, deg, true)
	weak := distanceBound(0, 2, radii, aspect, a, deg, true)
	if strong >= weak {
		t.Fatalf("strong pair bound %g should be smaller than weak %g", strong, weak)
	}
}

func TestDistanceBoundSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		n := 4
		radii := make([]float64, n)
		aspect := make([]float64, n)
		a := linalg.NewDense(n, n)
		for i := 0; i < n; i++ {
			radii[i] = 0.5 + rng.Float64()
			aspect[i] = 1 + rng.Float64()*2
			for j := i + 1; j < n; j++ {
				w := rng.Float64() * 5
				a.Set(i, j, w)
				a.Set(j, i, w)
			}
		}
		deg := netlist.Degrees(a)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				b1 := distanceBound(i, j, radii, aspect, a, deg, true)
				b2 := distanceBound(j, i, radii, aspect, a, deg, true)
				if math.Abs(b1-b2) > 1e-12 {
					t.Fatalf("bound not symmetric: %g vs %g", b1, b2)
				}
			}
		}
	}
}

func TestAdaptiveAManhattanScaling(t *testing.T) {
	nl := &netlist.Netlist{
		Modules: []netlist.Module{
			{Name: "a", MinArea: 1, MaxAspect: 1},
			{Name: "b", MinArea: 1, MaxAspect: 1},
		},
		Nets: []netlist.Net{{Name: "n", Weight: 2, Modules: []int{0, 1}}},
	}
	centers := []geom.Point{{X: 0, Y: 0}, {X: 3, Y: 4}}
	a := adaptiveA(nl, centers, true, false)
	// M = 7, D = 25 → weight 2·7/25.
	want := 2 * 7.0 / 25.0
	if math.Abs(a.At(0, 1)-want) > 1e-12 {
		t.Fatalf("adaptive weight = %g, want %g", a.At(0, 1), want)
	}
	// Nil centers → base adjacency.
	base := adaptiveA(nl, nil, true, false)
	if base.At(0, 1) != 2 {
		t.Fatalf("base weight = %g, want 2", base.At(0, 1))
	}
}

func TestAdaptiveAHyperEdgeBoundaryOnly(t *testing.T) {
	nl := &netlist.Netlist{
		Modules: []netlist.Module{
			{Name: "a", MinArea: 1, MaxAspect: 1},
			{Name: "b", MinArea: 1, MaxAspect: 1},
			{Name: "c", MinArea: 1, MaxAspect: 1},
		},
		Nets: []netlist.Net{{Name: "n", Weight: 2, Modules: []int{0, 1, 2}}},
	}
	// Module 1 strictly inside the bbox of {0, 2}.
	centers := []geom.Point{{X: 0, Y: 0}, {X: 5, Y: 5}, {X: 10, Y: 10}}
	a := adaptiveA(nl, centers, false, true)
	if a.At(0, 2) == 0 {
		t.Fatal("boundary pair (0,2) should be connected")
	}
	if a.At(0, 1) != 0 || a.At(1, 2) != 0 {
		t.Fatalf("interior module should be disconnected this iteration: %v", a)
	}
}

func TestSolveNonSquareRunsAndSatisfiesBounds(t *testing.T) {
	nl := chainNL(4, 5)
	res, err := Solve(nl, Options{MaxIter: 15, NonSquare: true, Manhattan: true})
	if err != nil {
		t.Fatal(err)
	}
	bld := newBuilder(nl, &Options{NonSquare: true})
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			d := res.Centers[i].DistSq(res.Centers[j])
			bound := bld.bound(pair{i, j})
			if d < bound*(1-2e-2) {
				t.Fatalf("non-square pair (%d,%d): D=%g < bound %g", i, j, d, bound)
			}
		}
	}
}

func TestSolveHistoryRecorded(t *testing.T) {
	nl := chainNL(3, 4)
	res, err := Solve(nl, Options{MaxIter: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) == 0 || len(res.History) != res.Iterations {
		t.Fatalf("history length %d, iterations %d", len(res.History), res.Iterations)
	}
	for _, h := range res.History {
		if h.Alpha <= 0 || h.NumCons <= 0 {
			t.Fatalf("bad history record: %+v", h)
		}
	}
}

func TestSolveEmptyNetlistErrors(t *testing.T) {
	if _, err := Solve(&netlist.Netlist{}, Options{}); err == nil {
		t.Fatal("expected error for empty netlist")
	}
}

func TestOptionsWithAllEnhancements(t *testing.T) {
	o := Options{}.WithAllEnhancements()
	if !o.NonSquare || !o.Manhattan || !o.HyperEdge {
		t.Fatalf("enhancements not enabled: %+v", o)
	}
}

func TestSolverKindString(t *testing.T) {
	if SolverIPM.String() != "ipm" || SolverADMM.String() != "admm" {
		t.Fatal("SolverKind strings wrong")
	}
}

func TestSolveDistanceCapEnforced(t *testing.T) {
	// Two anchored modules pulled apart by pads, plus a proximity cap that
	// forces them within distance 2 of each other.
	nl := &netlist.Netlist{
		Modules: []netlist.Module{
			{Name: "a", MinArea: 1, MaxAspect: 1},
			{Name: "b", MinArea: 1, MaxAspect: 1},
		},
		Pads: []netlist.Pad{
			{Name: "pl", Pos: geom.Point{X: -6, Y: 0}},
			{Name: "pr", Pos: geom.Point{X: 6, Y: 0}},
		},
		Nets: []netlist.Net{
			{Name: "al", Weight: 3, Modules: []int{0}, Pads: []int{0}},
			{Name: "br", Weight: 3, Modules: []int{1}, Pads: []int{1}},
		},
	}
	// Without the cap, the pads pull the modules ~12 apart.
	free, err := Solve(nl, Options{MaxIter: 15})
	if err != nil {
		t.Fatal(err)
	}
	if d := free.Centers[0].Dist(free.Centers[1]); d < 6 {
		t.Fatalf("uncapped distance %g unexpectedly small", d)
	}
	capped, err := Solve(nl, Options{
		MaxIter:      15,
		DistanceCaps: []DistanceCap{{I: 0, J: 1, MaxDist: 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if d := capped.Centers[0].Dist(capped.Centers[1]); d > 2.1 {
		t.Fatalf("capped distance %g exceeds MaxDist 2", d)
	}
	// The separation lower bound still holds alongside the cap.
	if d := capped.Centers[0].Dist(capped.Centers[1]); d < 1-1e-2 {
		t.Fatalf("capped distance %g violates separation bound 1", d)
	}
}

func TestSolveWithADMMSolver(t *testing.T) {
	nl := chainNL(3, 4)
	ipm, err := Solve(nl, Options{MaxIter: 8})
	if err != nil {
		t.Fatal(err)
	}
	admm, err := Solve(nl, Options{MaxIter: 8, Solver: SolverADMM, SolverMaxIter: 20000})
	if err != nil {
		t.Fatal(err)
	}
	// The two solvers must agree on the objective within first-order accuracy.
	if math.Abs(ipm.Objective-admm.Objective) > 0.05*(1+math.Abs(ipm.Objective)) {
		t.Fatalf("ADMM objective %g vs IPM %g", admm.Objective, ipm.Objective)
	}
}

func TestSolveContextCancellation(t *testing.T) {
	nl := chainNL(5, 6)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled: the solve must stop at the first check
	_, err := Solve(nl, Options{MaxIter: 20, Context: ctx})
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("expected context.Canceled, got %v", err)
	}
}
