package core

import (
	"sdpfloor/internal/linalg"
	"sdpfloor/internal/sdp"
)

// warmState carries solver state across the sub-problem-1 solve sequence of
// one convex-iteration run. Consecutive SDPs differ only in the objective
// (direction matrix, adaptive B) and in a slowly changing working set of
// pair constraints, so the previous solution is an excellent starting point
// for the next solve: the PSD block and its dual slack carry over directly
// (the block dimension n+2 never changes), while the multipliers and LP
// slacks are projected onto the new constraint layout. The IPM additionally
// keeps an assembly/equilibration cache for runs of solves with an unchanged
// working set. The ADMM penalty is deliberately NOT resumed: the terminal
// adapted penalty is tuned for the previous problem's endgame and measurably
// slows — in bad cases stalls — the transient on the changed objective,
// while re-adapting from the default recovers quickly from the warm iterate.
type warmState struct {
	sol   *sdp.Solution // last usable solution (duals against the original problem)
	pairs []pair        // working set that solution was solved with

	reuse      *sdp.IPMReuse // constraint-assembly cache (IPM only)
	reusePairs []pair        // working set the cache was built for
}

// noteSolution records sol as the warm-start source for the next solve.
// Solutions from failed or cancelled solves are not recorded; iterate-limit
// terminations are — their iterate is inexact but still far closer to the
// next solution than a cold start.
func (b *builder) noteSolution(sol *sdp.Solution, pairs []pair) {
	if b.opt.NoWarmStart || sol == nil {
		return
	}
	switch sol.Status {
	case sdp.StatusOptimal, sdp.StatusIterationLimit:
	default:
		return
	}
	if b.warm == nil {
		b.warm = &warmState{}
	}
	b.warm.sol = sol
	b.warm.pairs = append([]pair(nil), pairs...) // snapshot: caller mutates its slice
}

// prefixCons returns the number of constraints buildProblem emits before the
// pair block: the 3 identity-block equalities plus the PPM equalities (two
// per fixed module and one pairwise dot product per fixed pair, i incl. j).
func (b *builder) prefixCons() int {
	f := 0
	for _, m := range b.nl.Modules {
		if m.Fixed {
			f++
		}
	}
	return 3 + 2*f + f*(f+1)/2
}

// suffixCons returns the number of constraints (each with one LP slack)
// buildProblem emits after the pair block: distance caps, then four outline
// bounds per non-fixed module.
func (b *builder) suffixCons() int {
	s := len(b.opt.DistanceCaps)
	if b.opt.Outline != nil {
		for _, m := range b.nl.Modules {
			if !m.Fixed {
				s += 4
			}
		}
	}
	return s
}

// projectWarm maps the previous solution's dual vector and LP block onto the
// constraint layout of the new working set. buildProblem's ordering is
// [prefix | one row+slack per pair | suffix], with prefix and suffix
// invariant across solves, so rows map by position there and by pair
// identity in the middle. A pair new to the working set gets multiplier 0
// and a primal slack read off the current iterate (so A(X) ≈ b holds on the
// fresh row); dropped pairs simply lose their entries. Returns nils when the
// recorded solution does not match the expected layout (e.g. it came from a
// differently configured builder), which cold-starts the solve.
func (b *builder) projectWarm(w *warmState, pairs []pair) (y, xlp, slp []float64) {
	prev := w.sol
	pre, suf := b.prefixCons(), b.suffixCons()
	p0, p1 := len(w.pairs), len(pairs)
	if len(prev.Y) != pre+p0+suf || len(prev.XLP) != p0+suf || len(prev.SLP) != p0+suf {
		return nil, nil, nil
	}
	idx := make(map[pair]int, p0)
	for i, pr := range w.pairs {
		idx[pr] = i
	}
	y = make([]float64, pre+p1+suf)
	xlp = make([]float64, p1+suf)
	slp = make([]float64, p1+suf)
	copy(y[:pre], prev.Y[:pre])
	z := prev.X[0]
	for t, pr := range pairs {
		if t0, ok := idx[pr]; ok {
			y[pre+t] = prev.Y[pre+t0]
			xlp[t] = prev.XLP[t0]
			slp[t] = prev.SLP[t0]
		} else {
			xlp[t] = maxf(b.pairSlack(z, pr), 1e-8)
			slp[t] = 1
		}
	}
	copy(y[pre+p1:], prev.Y[pre+p0:])
	copy(xlp[p1:], prev.XLP[p0:])
	copy(slp[p1:], prev.SLP[p0:])
	return y, xlp, slp
}

// reuseFor returns the IPM assembly cache to pass for a solve over pairs,
// rotating in a fresh handle whenever the working set changed (the cache is
// only valid across solves with identical constraints; see sdp.IPMReuse).
func (w *warmState) reuseFor(pairs []pair) *sdp.IPMReuse {
	if w.reuse == nil || !pairsEqual(w.reusePairs, pairs) {
		w.reuse = &sdp.IPMReuse{}
		w.reusePairs = append([]pair(nil), pairs...)
	}
	return w.reuse
}

func pairsEqual(a, b []pair) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// warmBlocks returns clones-by-reference of the previous PSD iterate and its
// dual slack when their dimension matches the current problem (it always
// does within one Solve; the guard protects against misuse).
func (b *builder) warmBlocks(prev *sdp.Solution) (x0, s0 []*linalg.Dense) {
	if len(prev.X) != 1 || prev.X[0].Rows != b.dim {
		return nil, nil
	}
	if len(prev.S) != 1 || prev.S[0].Rows != b.dim {
		return prev.X, nil
	}
	return prev.X, prev.S
}
