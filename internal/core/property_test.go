package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"sdpfloor/internal/geom"
	"sdpfloor/internal/linalg"
	"sdpfloor/internal/netlist"
)

// randomSmallNL builds a random connected netlist with 3–6 modules and two
// anchoring pads.
func randomSmallNL(rng *rand.Rand) *netlist.Netlist {
	n := 3 + rng.Intn(4)
	nl := &netlist.Netlist{}
	for i := 0; i < n; i++ {
		nl.Modules = append(nl.Modules, netlist.Module{
			Name:      "m",
			MinArea:   0.5 + rng.Float64()*2,
			MaxAspect: 1 + rng.Float64()*2,
		})
	}
	// Spanning tree plus extras.
	for i := 1; i < n; i++ {
		nl.Nets = append(nl.Nets, netlist.Net{
			Name: "t", Weight: 0.5 + rng.Float64()*2, Modules: []int{rng.Intn(i), i},
		})
	}
	for e := 0; e < n; e++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if a != b {
			nl.Nets = append(nl.Nets, netlist.Net{
				Name: "r", Weight: rng.Float64(), Modules: []int{a, b},
			})
		}
	}
	span := 2 + rng.Float64()*4
	nl.Pads = []netlist.Pad{
		{Name: "pl", Pos: geom.Point{X: -span, Y: -span / 2}},
		{Name: "pr", Pos: geom.Point{X: span, Y: span / 2}},
	}
	nl.Nets = append(nl.Nets,
		netlist.Net{Name: "pa", Weight: 1, Modules: []int{0}, Pads: []int{0}},
		netlist.Net{Name: "pb", Weight: 1, Modules: []int{n - 1}, Pads: []int{1}},
	)
	return nl
}

// TestSolveDistanceFeasibilityProperty: for random instances, every pair of
// the returned floorplan satisfies its distance bound whenever the rank
// constraint was reached (the G-block constraints always hold; the 2-D
// readout inherits them exactly when rank 2 is certified).
func TestSolveDistanceFeasibilityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nl := randomSmallNL(rng)
		res, err := Solve(nl, Options{MaxIter: 12})
		if err != nil {
			return false
		}
		if !res.RankOK {
			return true // no certificate, nothing to check at rank-2 level
		}
		bld := newBuilder(nl, &Options{})
		for i := 0; i < nl.N(); i++ {
			for j := i + 1; j < nl.N(); j++ {
				d := res.Centers[i].DistSq(res.Centers[j])
				if d < bld.bound(pair{i, j})*(1-5e-2) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestDirectionMatrixProjectorProperty: W from sub-problem 2 is an
// orthogonal projector (W² = W) of trace n.
func TestDirectionMatrixProjectorProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dim := 3 + rng.Intn(6)
		n := 1 + rng.Intn(dim-1)
		z := linalg.NewDense(dim, dim)
		for i := 0; i < dim; i++ {
			for j := i; j < dim; j++ {
				v := rng.NormFloat64()
				z.Set(i, j, v)
				z.Set(j, i, v)
			}
		}
		w, _, err := DirectionMatrix(z, n)
		if err != nil {
			return false
		}
		w2 := linalg.MatMul(w, w)
		diff := w2.Clone()
		diff.AddScaled(-1, w)
		return diff.MaxAbs() < 1e-8 && math.Abs(w.Trace()-float64(n)) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestDirectionMatrixLowerBoundsObjective: for ANY feasible W' of
// sub-problem 2, ⟨W', Z⟩ ≥ the Ky-Fan optimum. Sampled with random
// projector-like W'.
func TestDirectionMatrixLowerBoundsObjective(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		dim := 4 + rng.Intn(4)
		n := 1 + rng.Intn(dim-1)
		z := linalg.NewDense(dim, dim)
		for i := 0; i < dim; i++ {
			for j := i; j < dim; j++ {
				v := rng.NormFloat64()
				z.Set(i, j, v)
				z.Set(j, i, v)
			}
		}
		_, opt, err := DirectionMatrix(z, n)
		if err != nil {
			t.Fatal(err)
		}
		// Random feasible W': projector onto n random orthonormal vectors.
		m := linalg.NewDense(dim, dim)
		for i := range m.Data {
			m.Data[i] = rng.NormFloat64()
		}
		q := gramSchmidt(m, n)
		wp := linalg.MatMul(q, q.T())
		if got := linalg.InnerProd(wp, z); got < opt-1e-8*(1+math.Abs(opt)) {
			t.Fatalf("random feasible W' beat the Ky-Fan optimum: %g < %g", got, opt)
		}
	}
}

// gramSchmidt returns dim×n with orthonormal columns from the first n
// columns of m.
func gramSchmidt(m *linalg.Dense, n int) *linalg.Dense {
	dim := m.Rows
	q := linalg.NewDense(dim, n)
	for c := 0; c < n; c++ {
		v := make([]float64, dim)
		for r := 0; r < dim; r++ {
			v[r] = m.At(r, c)
		}
		for p := 0; p < c; p++ {
			dot := 0.0
			for r := 0; r < dim; r++ {
				dot += v[r] * q.At(r, p)
			}
			for r := 0; r < dim; r++ {
				v[r] -= dot * q.At(r, p)
			}
		}
		nrm := linalg.Norm2(v)
		if nrm < 1e-12 {
			nrm = 1
		}
		for r := 0; r < dim; r++ {
			q.Set(r, c, v[r]/nrm)
		}
	}
	return q
}

// TestBaseBMatrixIsPSD: B of Eq. 8 from a symmetric adjacency is a scaled
// graph Laplacian, hence positive semidefinite.
func TestBaseBMatrixIsPSD(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		a := linalg.NewDense(n, n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.5 {
					w := rng.Float64() * 3
					a.Set(i, j, w)
					a.Set(j, i, w)
				}
			}
		}
		b := netlist.BuildB(a)
		eg, err := linalg.NewSymEig(b)
		if err != nil {
			return false
		}
		return eg.MinEigenvalue() > -1e-9*(1+b.MaxAbs())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestSolveObjectiveDecreasesWithWeakerConstraints: shrinking every module
// (smaller radii) can only improve the optimal squared wirelength.
func TestSolveObjectiveDecreasesWithWeakerConstraints(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	nl := randomSmallNL(rng)
	big, err := Solve(nl, Options{MaxIter: 10})
	if err != nil {
		t.Fatal(err)
	}
	shrunk := &netlist.Netlist{Pads: nl.Pads, Nets: nl.Nets}
	for _, m := range nl.Modules {
		m.MinArea *= 0.25
		shrunk.Modules = append(shrunk.Modules, m)
	}
	small, err := Solve(shrunk, Options{MaxIter: 10})
	if err != nil {
		t.Fatal(err)
	}
	if small.Objective > big.Objective*(1+0.05) {
		t.Fatalf("smaller modules gave worse objective: %g > %g", small.Objective, big.Objective)
	}
}
