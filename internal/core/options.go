// Package core implements the paper's primary contribution: global
// floorplanning as a rank-constrained SDP solved by convex iteration
// (Section IV). The main problem (Eqs. 10–12) minimizes ⟨B, G⟩ over
//
//	Z = [[I, X], [Xᵀ, G]] ⪰ 0,  D_ij ≥ (rᵢ+rⱼ)²,  rank(Z) = 2,
//
// and the rank constraint is replaced by a direction-matrix penalty
// α⟨W, Z⟩ (Eq. 13). Two sub-problems are alternated: sub-problem 1
// (Eq. 18) is a linear SDP solved by internal/sdp; sub-problem 2 (Eq. 19)
// has the closed-form Ky-Fan solution W = UUᵀ over the n smallest
// eigenvectors of Z. The outer loop doubles α until ⟨W, Z⟩ < ε
// (Algorithm 1).
//
// The enhancements of Section IV-B are all implemented: the adaptive
// Manhattan-distance B matrix (Eq. 20), its hyper-edge extension, boundary
// pins (Eq. 21), fixed outlines, pre-placed-module constraints (Eqs. 22–24),
// and the non-square adaptive distance constraints (Eqs. 25–26). A lazy
// working-set over the O(n²) distance constraints keeps larger instances
// tractable without changing the solution (the final iterate is feasible
// for every pair).
package core

import (
	"context"

	"sdpfloor/internal/geom"
	"sdpfloor/internal/trace"
)

// DistanceCap is an upper bound on the center distance of one module pair:
// D_IJ ≤ MaxDist². Added to sub-problem 1 alongside the separation lower
// bounds.
type DistanceCap struct {
	I, J    int
	MaxDist float64
}

// SolverKind selects the SDP solver for sub-problem 1.
type SolverKind int

// Available sub-problem solvers.
const (
	SolverIPM  SolverKind = iota // interior point (high accuracy; default)
	SolverADMM                   // first order (cheaper per constraint, lower accuracy)
)

func (s SolverKind) String() string {
	if s == SolverADMM {
		return "admm"
	}
	return "ipm"
}

// Options configure the convex-iteration floorplanner. The zero value gives
// the paper's defaults with all enhancements off (the "basic" algorithm of
// Section IV-A); see WithAllEnhancements.
type Options struct {
	// Alpha0 is the initial rank-penalty coefficient α (Algorithm 1). The
	// paper uses 0.5 for the small benchmarks and 1024 for n100/n200; the
	// default (0) auto-scales α to the objective magnitude, which lands in
	// the same place without burning outer rounds on too-small values.
	Alpha0 float64
	// AlphaMaxDoublings caps the outer loop (default 10).
	AlphaMaxDoublings int
	// MaxIter is the paper's max_iter: convex iterations per α (the paper
	// uses 50 with MOSEK; default here 20 — the iteration typically
	// converges or stalls well before that).
	MaxIter int
	// Epsilon is the convergence threshold on ‖ΔZ‖+‖ΔW‖ (default 2e-3,
	// relative to ‖Z‖).
	Epsilon float64
	// RankEpsilon declares the rank constraint satisfied when
	// ⟨W, Z⟩ < RankEpsilon·max(1, tr Z) (default 1e-4).
	RankEpsilon float64

	// NonSquare enables the adaptive distance constraints of Eqs. 25–26.
	NonSquare bool
	// Manhattan enables the adaptive B matrix of Eq. 20.
	Manhattan bool
	// HyperEdge enables the hyper-edge variant of the Eq. 20 adaptation:
	// multi-pin nets only attract module pairs on their bounding box.
	HyperEdge bool

	// Outline, when non-nil, bounds every center inside the rectangle
	// (inset by each module's minimal half-width).
	Outline *geom.Rect

	// DistanceCaps adds proximity constraints D_ij ≤ MaxDist² — the
	// "directly control the distance" capability Section IV-D highlights
	// (e.g. timing requirements between blocks on a critical path).
	DistanceCaps []DistanceCap

	// LazyConstraints activates working-set constraint generation over the
	// O(n²) distance constraints. Strongly recommended for n ≥ 60.
	LazyConstraints bool
	// LazyMaxRounds caps constraint-generation rounds per sub-problem-1
	// solve (default 8).
	LazyMaxRounds int

	// Solver picks the sub-problem-1 SDP solver (default IPM).
	Solver SolverKind
	// ADMMMu0, when positive, seeds the ADMM penalty parameter μ on cold
	// sub-problem solves (the portfolio tuning table's per-size knob). It
	// is deliberately ignored on warm-started solves: re-seeding μ when
	// resuming from a previous iterate stalls the solver on changed
	// objectives (see warmState), so the tuned value applies only where a
	// cold solve would otherwise use the solver default.
	ADMMMu0 float64
	// Prior, when non-nil, seeds the convex iteration from an external
	// previous solution (incremental / ECO re-floorplanning): the iterate,
	// direction matrix, adaptive-B centers, lazy working set, and the
	// first sub-problem's warm start all begin at the prior placement
	// instead of cold. See the Prior type (prior.go). The prior must have
	// exactly one center per module; Solve rejects mismatches. Ignored
	// when NoWarmStart is set, except for the iterate/direction-matrix
	// seeding, which involves no solver state.
	Prior *Prior
	// NoWarmStart disables the warm-start/solve-sequence reuse layer, i.e.
	// warm starting is ON by default. When off-switched, every
	// sub-problem-1 solve starts from the solver's cold initial point and
	// no constraint-assembly state is carried between solves. Warm starting
	// changes iteration counts, never certified solutions (warm and cold
	// solves of the same SDP agree to solver tolerance — see the parity
	// tests); the switch exists for debugging and A/B timing. Result
	// reports WarmStarts/SubSolves, and solver trace events carry a "warm"
	// field, so the effect is observable end to end.
	NoWarmStart bool
	// Workers bounds the parallelism of one solve: the SDP Schur complement,
	// dense factorizations, eigendecompositions, and netlist matrix assembly
	// all split across the shared worker pool at this width. 0 uses the pool
	// default (GOMAXPROCS, or the SDPFLOOR_WORKERS environment override);
	// 1 runs fully sequential. Solver trajectories are bitwise identical for
	// every value; see docs/PERFORMANCE.md for the parallelism model.
	Workers int
	// SolverTol overrides the solver tolerance (default 1e-7 IPM, 2e-5 ADMM).
	SolverTol float64
	// SolverMaxIter overrides the solver iteration cap.
	SolverMaxIter int

	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)

	// Context, when non-nil, allows cancelling a long solve. It is checked
	// between convex iterations and also threaded into the sub-problem
	// solvers, which check it at every IPM/ADMM iteration (the paper
	// reports multi-hour runs at n200, and a single sub-problem solve can
	// dominate). On cancellation Solve returns the last completed iterate
	// as a partial Result together with the wrapped context error.
	Context context.Context

	// Trace, when non-nil and enabled, receives structured telemetry:
	// "core" events for the convex iteration (α, Ky-Fan objective ⟨W,Z⟩,
	// working-set size) and, because the recorder is threaded into the
	// sub-problem solvers, interleaved "ipm"/"admm" events for every SDP
	// solve. The trace always closes with one "core" final record, also on
	// cancellation. Event content excludes wall-clock durations (those
	// live in IterRecord and event timestamps), so traces are
	// deterministic across worker counts. See docs/TRACING.md.
	Trace trace.Recorder
}

func (o *Options) setDefaults() {
	if o.AlphaMaxDoublings == 0 {
		o.AlphaMaxDoublings = 10
	}
	if o.MaxIter == 0 {
		o.MaxIter = 20
	}
	if o.Epsilon == 0 {
		o.Epsilon = 2e-3
	}
	if o.RankEpsilon == 0 {
		o.RankEpsilon = 1e-4
	}
	if o.LazyMaxRounds == 0 {
		o.LazyMaxRounds = 8
	}
	if o.SolverTol == 0 {
		if o.Solver == SolverADMM {
			o.SolverTol = 2e-5
		} else {
			o.SolverTol = 1e-6
		}
	}
}

// WithAllEnhancements returns a copy of o with every Section IV-B technique
// enabled (the paper's best configuration, the yellow curve in Fig. 4).
func (o Options) WithAllEnhancements() Options {
	o.NonSquare = true
	o.Manhattan = true
	o.HyperEdge = true
	return o
}
