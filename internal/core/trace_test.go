package core

import (
	"context"
	"testing"

	"sdpfloor/internal/trace"
)

// TestSolveTraceInterleavesSolvers checks the threaded recorder: one core
// run produces a trace that opens with the core "start", closes with the
// core "final", and interleaves the sub-problem IPM events in between.
func TestSolveTraceInterleavesSolvers(t *testing.T) {
	ring := trace.NewRing(8192)
	if _, err := Solve(chainNL(3, 4), Options{MaxIter: 10, Trace: ring}); err != nil {
		t.Fatal(err)
	}
	evs := ring.Snapshot()
	if len(evs) < 4 {
		t.Fatalf("trace too short: %d events", len(evs))
	}
	if evs[0].Solver != "core" || evs[0].Kind != trace.KindStart {
		t.Fatalf("first event %+v, want core start", evs[0])
	}
	last := evs[len(evs)-1]
	if last.Solver != "core" || last.Kind != trace.KindFinal || last.Status != "ok" {
		t.Fatalf("last event %+v, want core final status ok", last)
	}
	var coreIters, coreFinals, ipmEvents int
	for _, ev := range evs {
		switch {
		case ev.Solver == "core" && ev.Kind == trace.KindIter:
			coreIters++
			fields := map[string]float64{}
			for _, f := range ev.Fields {
				fields[f.Key] = f.Val
			}
			for _, key := range []string{"alpha", "obj", "wz", "trZ", "cons", "solverIters"} {
				if _, ok := fields[key]; !ok {
					t.Fatalf("core iter missing field %q: %+v", key, ev.Fields)
				}
			}
		case ev.Solver == "core" && ev.Kind == trace.KindFinal:
			coreFinals++
		case ev.Solver == "ipm":
			ipmEvents++
		}
	}
	if coreIters == 0 {
		t.Fatal("no core iter events")
	}
	if coreFinals != 1 {
		t.Fatalf("%d core final events, want 1", coreFinals)
	}
	if ipmEvents == 0 {
		t.Fatal("no interleaved ipm events; recorder not threaded into sub-problem solves")
	}
}

// cancelAfterIters cancels after n solver iter events from inside Record, a
// deterministic stand-in for a client abandoning a long solve.
type cancelAfterIters struct {
	next   trace.Recorder
	cancel context.CancelFunc
	n      int
	seen   int
}

func (c *cancelAfterIters) Enabled() bool { return true }

func (c *cancelAfterIters) Record(ev trace.Event) {
	c.next.Record(ev)
	if ev.Kind == trace.KindIter {
		c.seen++
		if c.seen == c.n {
			c.cancel()
		}
	}
}

// TestSolveTraceFinalOnCancel asserts a cancelled convex iteration still
// closes its trace: the last event is the core "final" with status
// "cancelled", after the interrupted sub-problem's own "final".
func TestSolveTraceFinalOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ring := trace.NewRing(8192)
	rec := &cancelAfterIters{next: ring, cancel: cancel, n: 2}
	res, err := Solve(chainNL(4, 5), Options{MaxIter: 10, Context: ctx, Trace: rec})
	if err == nil {
		t.Fatal("want cancellation error")
	}
	if res == nil {
		t.Fatal("want partial result on cancellation")
	}
	evs := ring.Snapshot()
	last := evs[len(evs)-1]
	if last.Solver != "core" || last.Kind != trace.KindFinal || last.Status != "cancelled" {
		t.Fatalf("last event %+v, want core final status cancelled", last)
	}
	finals := map[string]int{}
	open := map[string]int{}
	for _, ev := range evs {
		switch ev.Kind {
		case trace.KindStart:
			open[ev.Solver]++
		case trace.KindFinal:
			finals[ev.Solver]++
		}
	}
	for solver, n := range open {
		if finals[solver] != n {
			t.Fatalf("solver %s: %d starts but %d finals", solver, n, finals[solver])
		}
	}
}
