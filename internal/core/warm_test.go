package core

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"sdpfloor/internal/gsrc"
	"sdpfloor/internal/linalg"
	"sdpfloor/internal/netlist"
	"sdpfloor/internal/sdp"
	"sdpfloor/internal/trace"
)

// builtinNL loads one of the bundled GSRC designs as a netlist.
func builtinNL(t *testing.T, name string) *netlist.Netlist {
	t.Helper()
	d, err := gsrc.Builtin(name, 1, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	return d.Netlist
}

// subProblemParity drives two consecutive sub-problem-1 solves through the
// builder — exactly the sequence the convex iteration produces — and checks
// the warm second solve against a cold solve of the same problem: both must
// certify KKT at the solver's accuracy and agree in objective.
func subProblemParity(t *testing.T, nl *netlist.Netlist, kind SolverKind, lazy bool, kktTol float64) {
	t.Helper()
	opt := Options{Solver: kind, Workers: 1}
	if kind == SolverADMM {
		opt.SolverMaxIter = 50000
		opt.SolverTol = 1e-5
	}
	opt.setDefaults()
	bld := newBuilder(nl, &opt)
	var pairs []pair
	if lazy {
		pairs = bld.seedPairs()
	} else {
		pairs = bld.allPairs()
	}
	bt := netlist.BuildBP(bld.baseA, 1)
	alpha := maxf(0.5, meanDiagonal(bt)/4)

	// Iterate 1: cold by construction (nothing recorded yet).
	c1 := bld.objectiveC(bt, linalg.Identity(bld.dim), alpha)
	prob1 := bld.buildProblem(c1, pairs)
	first, err := bld.solveProblem(prob1, pairs)
	if err != nil {
		t.Fatal(err)
	}
	if first.Status != sdp.StatusOptimal {
		t.Fatalf("iterate 1: status %v", first.Status)
	}
	if first.Warm {
		t.Fatal("iterate 1 cannot be warm")
	}
	if err := sdp.CheckKKT(prob1, first, kktTol); err != nil {
		t.Fatalf("iterate 1 kkt: %v", err)
	}
	bld.noteSolution(first, pairs)

	// Iterate 2: the direction matrix moves, the constraints stay.
	z := first.X[0].Clone()
	z.Symmetrize()
	w2, _, err := DirectionMatrixP(z, bld.n, 1)
	if err != nil {
		t.Fatal(err)
	}
	c2 := bld.objectiveC(bt, w2, alpha)
	prob2 := bld.buildProblem(c2, pairs)
	warm, err := bld.solveProblem(prob2, pairs)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Warm {
		t.Fatal("iterate 2 did not consume the warm start")
	}
	if warm.Status != sdp.StatusOptimal {
		t.Fatalf("warm solve: status %v", warm.Status)
	}
	if err := sdp.CheckKKT(prob2, warm, kktTol); err != nil {
		t.Fatalf("warm kkt: %v", err)
	}

	// Cold reference: a fresh builder with the layer switched off.
	optCold := Options{Solver: kind, Workers: 1, NoWarmStart: true}
	if kind == SolverADMM {
		optCold.SolverMaxIter = 50000
		optCold.SolverTol = 1e-5
	}
	optCold.setDefaults()
	bc := newBuilder(nl, &optCold)
	cold, err := bc.solveProblem(bc.buildProblem(c2, pairs), pairs)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Warm {
		t.Fatal("NoWarmStart solve reports Warm=true")
	}
	if cold.Status != sdp.StatusOptimal {
		t.Fatalf("cold solve: status %v", cold.Status)
	}
	if err := sdp.CheckKKT(prob2, cold, kktTol); err != nil {
		t.Fatalf("cold kkt: %v", err)
	}
	if d := math.Abs(warm.PrimalObj - cold.PrimalObj); d > 10*kktTol*(1+math.Abs(cold.PrimalObj)) {
		t.Fatalf("objectives diverge: warm %g vs cold %g", warm.PrimalObj, cold.PrimalObj)
	}
	t.Logf("%s iterate 2: warm %d iterations, cold %d", kind, warm.Iterations, cold.Iterations)
}

func TestSubProblemWarmColdParityIPMN10(t *testing.T) {
	subProblemParity(t, builtinNL(t, "n10"), SolverIPM, false, 1e-5)
}

func TestSubProblemWarmColdParityIPMN30(t *testing.T) {
	subProblemParity(t, builtinNL(t, "n30"), SolverIPM, true, 1e-5)
}

// ADMM parity runs on a chain instance: the first-order solver certifies
// optimality only on small sub-problems (on n10-sized ones it terminates at
// the iteration limit, which core tolerates but a KKT parity check cannot).
func TestSubProblemWarmColdParityADMMChain(t *testing.T) {
	subProblemParity(t, chainNL(3, 4), SolverADMM, false, 1e-3)
}

// TestSubProblemWarmAcrossWorkingSetChange — the projection must survive the
// lazy working set growing between solves: the prior iterate is mapped onto
// the new constraint rows and the added pairs get fresh slack variables.
func TestSubProblemWarmAcrossWorkingSetChange(t *testing.T) {
	nl := builtinNL(t, "n10")
	opt := Options{Workers: 1}
	opt.setDefaults()
	bld := newBuilder(nl, &opt)
	all := bld.allPairs()
	seed := all[:len(all)-3]

	bt := netlist.BuildBP(bld.baseA, 1)
	alpha := maxf(0.5, meanDiagonal(bt)/4)
	c := bld.objectiveC(bt, linalg.Identity(bld.dim), alpha)

	first, err := bld.solveProblem(bld.buildProblem(c, seed), seed)
	if err != nil {
		t.Fatal(err)
	}
	if first.Status != sdp.StatusOptimal {
		t.Fatalf("seed solve: status %v", first.Status)
	}
	bld.noteSolution(first, seed)

	// Same objective, three pairs added: the projected warm start must still
	// be consumed and the solution must still certify.
	grown, err := bld.solveProblem(bld.buildProblem(c, all), all)
	if err != nil {
		t.Fatal(err)
	}
	if !grown.Warm {
		t.Fatal("warm start not consumed across working-set growth")
	}
	if grown.Status != sdp.StatusOptimal {
		t.Fatalf("grown solve: status %v", grown.Status)
	}
	if err := sdp.CheckKKT(bld.buildProblem(c, all), grown, 1e-5); err != nil {
		t.Fatalf("grown kkt: %v", err)
	}
	bld.noteSolution(grown, all)

	// And shrinking back: rows dropped, prior iterate projected down.
	shrunk, err := bld.solveProblem(bld.buildProblem(c, seed), seed)
	if err != nil {
		t.Fatal(err)
	}
	if !shrunk.Warm {
		t.Fatal("warm start not consumed across working-set shrink")
	}
	if err := sdp.CheckKKT(bld.buildProblem(c, seed), shrunk, 1e-5); err != nil {
		t.Fatalf("shrunk kkt: %v", err)
	}
}

// TestSolveWarmStartEndToEnd — with the layer on (the default) the full
// convex iteration must report warm-started sub-solves and spend fewer total
// solver iterations than with NoWarmStart, while landing on the same
// objective.
func TestSolveWarmStartEndToEnd(t *testing.T) {
	nl := builtinNL(t, "n10")
	warm, err := Solve(nl, Options{MaxIter: 8, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	cold, err := Solve(nl, Options{MaxIter: 8, Workers: 1, NoWarmStart: true})
	if err != nil {
		t.Fatal(err)
	}
	if cold.WarmStarts != 0 {
		t.Fatalf("NoWarmStart run reports %d warm starts", cold.WarmStarts)
	}
	if warm.WarmStarts == 0 {
		t.Fatal("warm run consumed no warm starts")
	}
	if warm.SubSolves < 2 {
		t.Fatalf("expected multiple sub-solves, got %d", warm.SubSolves)
	}
	if d := math.Abs(warm.Objective - cold.Objective); d > 0.05*(1+math.Abs(cold.Objective)) {
		t.Fatalf("objectives diverge: warm %g vs cold %g", warm.Objective, cold.Objective)
	}
	if warm.SolverIterations >= cold.SolverIterations {
		t.Errorf("warm starting saved no solver iterations: warm %d, cold %d",
			warm.SolverIterations, cold.SolverIterations)
	}
	t.Logf("solver iterations: warm %d (%d/%d sub-solves warm), cold %d",
		warm.SolverIterations, warm.WarmStarts, warm.SubSolves, cold.SolverIterations)
}

// TestSolveWarmTraceDeterministicAcrossWorkers — the bitwise trace contract
// (modulo timestamps) must hold with warm starting enabled, at any worker
// count.
func TestSolveWarmTraceDeterministicAcrossWorkers(t *testing.T) {
	var want []string
	for i, workers := range []int{1, 2, 8} {
		nl := builtinNL(t, "n10")
		var buf bytes.Buffer
		rec := trace.NewJSONL(&buf)
		if _, err := Solve(nl, Options{MaxIter: 4, Workers: workers, Trace: rec}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
		for j := range lines {
			lines[j] = trace.StripTS(lines[j])
		}
		if i == 0 {
			want = lines
			continue
		}
		if len(lines) != len(want) {
			t.Fatalf("workers=%d: %d trace lines, want %d", workers, len(lines), len(want))
		}
		for j := range lines {
			if lines[j] != want[j] {
				t.Fatalf("workers=%d: trace line %d diverged:\n got %s\nwant %s",
					workers, j, lines[j], want[j])
			}
		}
	}
}
