package core

import (
	"fmt"
	"math"

	"sdpfloor/internal/geom"
	"sdpfloor/internal/linalg"
	"sdpfloor/internal/sdp"
)

// Prior carries an external previous solution into a Solve — the
// incremental (ECO) re-floorplanning entry. Where the in-sequence warm
// start (warmstart.go) resumes from the previous sub-problem solve of the
// SAME run, a Prior seeds a NEW run from module centers obtained elsewhere:
// a previous Solve of a slightly different netlist, a parsed placement
// file, or a service job being re-solved after an ECO delta.
//
// A prior changes only the starting point of the convex iteration, never
// its feasible set: the same constraints are built and the same
// convergence tests apply, so a solve from a bad prior degrades to roughly
// a cold solve rather than to a wrong answer. Concretely, a valid prior
//
//   - starts the iterate at the rank-2 lift Z_prior of the given centers
//     (exactly satisfying the identity-block equalities Z₀₀=1, Z₁₁=1,
//     Z₀₁=0),
//   - initializes the direction matrix W from Z_prior's Ky-Fan
//     eigenvectors instead of the identity, so the very first sub-problem
//     already penalizes rank in the prior's frame,
//   - seeds the adaptive-B centers, so Eq. 20 adapts from iteration 1,
//   - under lazy constraints, pre-loads the working set with the pairs the
//     prior violates (modules an ECO delta made overlap), and
//   - synthesizes a warm-start record at Z_prior so the first sub-problem
//     solve enters the IPM push-to-interior / ADMM resume path instead of
//     a cold start (both solvers keep their certified fallbacks).
type Prior struct {
	// Centers is the previous center per module, in netlist order. Its
	// length must equal the netlist's module count.
	Centers []geom.Point
}

// validate rejects priors that cannot seed a solve over n modules.
func (p *Prior) validate(n int) error {
	if len(p.Centers) != n {
		return fmt.Errorf("core: prior has %d centers, want %d", len(p.Centers), n)
	}
	for i, c := range p.Centers {
		if math.IsNaN(c.X) || math.IsInf(c.X, 0) || math.IsNaN(c.Y) || math.IsInf(c.Y, 0) {
			return fmt.Errorf("core: prior center %d is not finite: (%g, %g)", i, c.X, c.Y)
		}
	}
	return nil
}

// priorZ lifts centers to the rank-2 PSD iterate Z = VVᵀ with
// V = [e₁ | e₂ | x₁ … xₙ]ᵀ — the exact Z a fully converged run would
// produce for this placement (Eq. 9's structure with G the Gram matrix of
// the centers).
func priorZ(centers []geom.Point) *linalg.Dense {
	n := len(centers)
	z := linalg.NewDense(n+2, n+2)
	z.Set(0, 0, 1)
	z.Set(1, 1, 1)
	for i, c := range centers {
		z.Set(0, 2+i, c.X)
		z.Set(2+i, 0, c.X)
		z.Set(1, 2+i, c.Y)
		z.Set(2+i, 1, c.Y)
		for j := i; j < n; j++ {
			v := c.X*centers[j].X + c.Y*centers[j].Y
			z.Set(2+i, 2+j, v)
			z.Set(2+j, 2+i, v)
		}
	}
	return z
}

// seedWarmFromPrior installs a synthetic warm-start record at the prior
// iterate, as if a previous sub-problem solve over pairs had terminated at
// zp. Primal LP slacks are evaluated exactly against the constraint rows
// (clamped away from the cone boundary); the dual is left at a neutral
// point (S = I, y = 0) — the IPM blends toward the interior and test-
// factorizes before trusting it, and the ADMM consumes the blocks
// piecewise, so a synthetic dual can slow the first solve but never
// corrupt it.
func (b *builder) seedWarmFromPrior(zp *linalg.Dense, pairs []pair) {
	if b.opt.NoWarmStart {
		return
	}
	prob := b.buildProblem(linalg.NewDense(b.dim, b.dim), pairs)
	xlp := make([]float64, prob.LPDim)
	slp := make([]float64, prob.LPDim)
	for i := range slp {
		slp[i] = 1
	}
	for k := range prob.Cons {
		c := &prob.Cons[k]
		if len(c.LP) != 1 {
			continue // equality row: no slack variable
		}
		val := 0.0
		for _, e := range c.PSD[0] {
			if e.I == e.J {
				val += e.V * zp.At(e.I, e.J)
			} else {
				val += 2 * e.V * zp.At(e.I, e.J)
			}
		}
		xlp[c.LP[0].I] = maxf(val-c.B, 1e-8)
	}
	b.warm = &warmState{
		sol: &sdp.Solution{
			Status: sdp.StatusOptimal,
			X:      []*linalg.Dense{zp},
			XLP:    xlp,
			Y:      make([]float64, len(prob.Cons)),
			S:      []*linalg.Dense{linalg.Identity(b.dim)},
			SLP:    slp,
		},
		pairs: append([]pair(nil), pairs...),
	}
}
