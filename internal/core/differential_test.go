package core

import (
	"math"
	"math/rand"
	"testing"

	"sdpfloor/internal/linalg"
	"sdpfloor/internal/netlist"
	"sdpfloor/internal/sdp"
)

// TestDifferentialIPMvsADMM cross-checks the two sub-problem solvers on a
// seeded corpus of random floorplan SDPs (the same generator the property
// tests use): both must certify their KKT conditions at their respective
// accuracy and agree on the objective. Seeds 7 and 11 are excluded — on
// those two instances ADMM's convergence tail stalls just above the 2e-4
// stopping tolerance, so it cannot terminate with a certificate (a known
// first-order-solver limitation, not a disagreement).
func TestDifferentialIPMvsADMM(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4, 5, 6, 8, 9, 10, 12} {
		rng := rand.New(rand.NewSource(seed))
		nl := randomSmallNL(rng)
		opt := Options{Workers: 1}
		opt.setDefaults()
		bld := newBuilder(nl, &opt)
		pairs := bld.allPairs()
		bt := netlist.BuildBP(bld.baseA, 1)
		alpha := maxf(0.5, meanDiagonal(bt)/4)
		prob := bld.buildProblem(bld.objectiveC(bt, linalg.Identity(bld.dim), alpha), pairs)

		ipm, err := sdp.SolveIPM(prob, sdp.IPMOptions{})
		if err != nil {
			t.Fatalf("seed %d: ipm: %v", seed, err)
		}
		admm, err := sdp.SolveADMM(prob, sdp.ADMMOptions{Tol: 2e-4, MaxIter: 20000})
		if err != nil {
			t.Fatalf("seed %d: admm: %v", seed, err)
		}
		if ipm.Status != sdp.StatusOptimal {
			t.Fatalf("seed %d: ipm status %v", seed, ipm.Status)
		}
		if admm.Status != sdp.StatusOptimal {
			t.Fatalf("seed %d: admm status %v after %d iterations", seed, admm.Status, admm.Iterations)
		}
		if err := sdp.CheckKKT(prob, ipm, 1e-5); err != nil {
			t.Errorf("seed %d: ipm kkt: %v", seed, err)
		}
		if err := sdp.CheckKKT(prob, admm, 2e-3); err != nil {
			t.Errorf("seed %d: admm kkt: %v", seed, err)
		}
		if d := math.Abs(ipm.PrimalObj - admm.PrimalObj); d > 1e-2*(1+math.Abs(ipm.PrimalObj)) {
			t.Errorf("seed %d: objectives disagree: ipm %g vs admm %g", seed, ipm.PrimalObj, admm.PrimalObj)
		}
	}
}
