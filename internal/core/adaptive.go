package core

import (
	"math"

	"sdpfloor/internal/geom"
	"sdpfloor/internal/linalg"
	"sdpfloor/internal/netlist"
)

// adaptiveA returns the iteration-t adjacency A⁽ᵗ⁾ of Eq. (20):
// A⁽ᵗ⁾_ij = (M_ij/D_ij)·A_ij with M, D the Manhattan distance and squared
// Euclidean distance of the previous iterate. When hyperEdge is set,
// multi-pin nets contribute only between module pairs on the boundary of the
// net's bounding box at the previous iterate (the Kraftwerk2-style [11]
// adaptation the paper references); two-pin nets are unaffected.
//
// centers may be nil (first iteration): the base clique adjacency is
// returned unscaled.
func adaptiveA(nl *netlist.Netlist, centers []geom.Point, manhattan, hyperEdge bool) *linalg.Dense {
	return adaptiveAP(nl, centers, manhattan, hyperEdge, 1)
}

// adaptiveAP is adaptiveA with the base-adjacency fast path assembled over
// the worker pool. The adaptive reweighting itself stays sequential: the
// per-net work is tiny next to the SDP solve it feeds.
func adaptiveAP(nl *netlist.Netlist, centers []geom.Point, manhattan, hyperEdge bool, workers int) *linalg.Dense {
	n := nl.N()
	if centers == nil || (!manhattan && !hyperEdge) {
		return nl.AdjacencyP(workers)
	}
	a := linalg.NewDense(n, n)
	ratio := func(i, j int) float64 {
		if !manhattan {
			return 1
		}
		d := centers[i].DistSq(centers[j])
		m := centers[i].Manhattan(centers[j])
		// Guard: for coincident modules keep the base weight (the limit of
		// M/D as the points merge diverges; the paper's update assumes the
		// iterates stay separated, which the distance constraints enforce).
		const tiny = 1e-9
		if d < tiny || m < tiny {
			return 1
		}
		return m / d
	}
	for _, e := range nl.Nets {
		mods := e.Modules
		if len(mods) < 2 {
			continue
		}
		if len(mods) == 2 || !hyperEdge {
			w := e.Weight / float64(len(mods)-1)
			for x := 0; x < len(mods); x++ {
				for y := x + 1; y < len(mods); y++ {
					i, j := mods[x], mods[y]
					v := w * ratio(i, j)
					a.Add(i, j, v)
					a.Add(j, i, v)
				}
			}
			continue
		}
		// Hyper-edge: find the pins on the bounding box of the net at the
		// previous iterate; only those pairs are connected this iteration.
		var bb geom.BBox
		for _, i := range mods {
			bb.Extend(centers[i])
		}
		for _, p := range e.Pads {
			bb.Extend(nl.Pads[p].Pos)
		}
		r := bb.Rect()
		tol := 1e-9 * (1 + r.W() + r.H())
		var boundary []int
		for _, i := range mods {
			if bb.OnBoundary(centers[i], tol) {
				boundary = append(boundary, i)
			}
		}
		if len(boundary) < 2 {
			// Degenerate (all pins coincide): fall back to the clique.
			boundary = mods
		}
		w := e.Weight / float64(len(boundary)-1)
		for x := 0; x < len(boundary); x++ {
			for y := x + 1; y < len(boundary); y++ {
				i, j := boundary[x], boundary[y]
				v := w * ratio(i, j)
				a.Add(i, j, v)
				a.Add(j, i, v)
			}
		}
	}
	return a
}

// distanceBound returns the squared-distance lower bound for the pair (i, j)
// — Eq. (11) in the basic model, Eq. (26) with the non-square adaptation.
// radii are the model radii (already inflated by √k in non-square mode),
// aspect the per-module maximum aspect ratios, a the base adjacency, and
// deg its weighted degrees.
func distanceBound(i, j int, radii, aspect []float64, a *linalg.Dense, deg []float64, nonSquare bool) float64 {
	ri, rj := radii[i], radii[j]
	if !nonSquare {
		s := ri + rj
		return s * s
	}
	kij := blendedAspect(i, j, aspect[i], a, deg)
	kji := blendedAspect(j, i, aspect[j], a, deg)
	b1 := rj - ri + 2*ri/kij
	b2 := ri - rj + 2*rj/kji
	return math.Max(b1*b1, b2*b2)
}

// blendedAspect computes k_ij = A_ij/(Σ_l A_il)·(k−1) + 1 (Eq. 26): a heavily
// connected neighbour is allowed closer (k_ij → k), a weakly connected one is
// kept at the full circle distance (k_ij → 1).
func blendedAspect(i, j int, k float64, a *linalg.Dense, deg []float64) float64 {
	if deg[i] <= 0 {
		return 1
	}
	kij := a.At(i, j)/deg[i]*(k-1) + 1
	if kij < 1 {
		kij = 1
	}
	if kij > k {
		kij = k
	}
	return kij
}
