package parallel

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestForCoversRangeOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 7, 16, 100} {
		for _, n := range []int{0, 1, 2, 5, 63, 64, 1000} {
			hits := make([]int32, n)
			For(workers, n, 0, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, h)
				}
			}
		}
	}
}

func TestForSequentialFallback(t *testing.T) {
	calls := 0
	For(8, 100, 1000, func(lo, hi int) {
		calls++
		if lo != 0 || hi != 100 {
			t.Fatalf("fallback got [%d,%d), want [0,100)", lo, hi)
		}
	})
	if calls != 1 {
		t.Fatalf("fallback ran %d chunks, want 1", calls)
	}
}

func TestForChunkedPartition(t *testing.T) {
	// Chunk layout must be the fixed c·n/w boundaries, exactly Chunks() of
	// them, with no gaps or overlaps.
	for _, workers := range []int{2, 3, 8} {
		n := 100
		got := make(map[int][2]int)
		var mu = make(chan struct{}, 1)
		mu <- struct{}{}
		ForChunked(workers, n, 0, func(c, lo, hi int) {
			<-mu
			got[c] = [2]int{lo, hi}
			mu <- struct{}{}
		})
		if len(got) != Chunks(workers, n, 0) {
			t.Fatalf("workers=%d: %d chunks, want %d", workers, len(got), Chunks(workers, n, 0))
		}
		for c, r := range got {
			wantLo, wantHi := c*n/workers, (c+1)*n/workers
			if r[0] != wantLo || r[1] != wantHi {
				t.Fatalf("workers=%d chunk %d: [%d,%d), want [%d,%d)", workers, c, r[0], r[1], wantLo, wantHi)
			}
		}
	}
}

func TestNestedForNoDeadlock(t *testing.T) {
	// Saturate the pool with nested parallel-fors; inline fallback must keep
	// everything progressing.
	var total int64
	For(8, 8, 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			For(8, 100, 0, func(lo2, hi2 int) {
				atomic.AddInt64(&total, int64(hi2-lo2))
			})
		}
	})
	if total != 800 {
		t.Fatalf("nested total = %d, want 800", total)
	}
}

func TestDoRunsAll(t *testing.T) {
	var ran [5]int32
	fs := make([]func(), len(ran))
	for i := range fs {
		i := i
		fs[i] = func() { atomic.AddInt32(&ran[i], 1) }
	}
	Do(fs...)
	for i, r := range ran {
		if r != 1 {
			t.Fatalf("thunk %d ran %d times", i, r)
		}
	}
	Do() // no-op
	Do(func() { atomic.AddInt32(&ran[0], 1) })
	if ran[0] != 2 {
		t.Fatal("single-thunk Do did not run inline")
	}
}

func TestEnvWorkers(t *testing.T) {
	cases := []struct {
		env      string
		fallback int
		want     int
	}{
		{"", 4, 4},
		{"8", 4, 8},
		{"1", 4, 1},
		{"0", 4, 4},
		{"-3", 4, 4},
		{"junk", 4, 4},
		{"", 0, 1},
	}
	for _, c := range cases {
		if got := EnvWorkers(c.env, c.fallback); got != c.want {
			t.Errorf("EnvWorkers(%q, %d) = %d, want %d", c.env, c.fallback, got, c.want)
		}
	}
}

func TestWorkersResolution(t *testing.T) {
	if got := Workers(3); got != 3 {
		t.Fatalf("Workers(3) = %d", got)
	}
	if got := Workers(0); got != Default() {
		t.Fatalf("Workers(0) = %d, want default %d", got, Default())
	}
	if Default() < 1 {
		t.Fatalf("Default() = %d", Default())
	}
}

func TestTriRanges(t *testing.T) {
	for _, m := range []int{1, 2, 5, 17, 100, 573} {
		for _, workers := range []int{1, 2, 4, 8, 600} {
			b := TriRanges(m, workers)
			if b[0] != 0 || b[len(b)-1] != m {
				t.Fatalf("m=%d w=%d: boundaries %v do not span [0,%d]", m, workers, b, m)
			}
			total := m * (m + 1) / 2
			per := total / min(workers, m)
			for c := 0; c+1 < len(b); c++ {
				if b[c] > b[c+1] {
					t.Fatalf("m=%d w=%d: decreasing boundaries %v", m, workers, b)
				}
				// Balance: no chunk should exceed twice its fair share plus
				// one row (a single row is the indivisible unit).
				cnt := b[c+1]*(b[c+1]+1)/2 - b[c]*(b[c]+1)/2
				if per > 0 && cnt > 2*per+m {
					t.Fatalf("m=%d w=%d chunk %d holds %d of %d elements", m, workers, c, cnt, total)
				}
			}
			// Determinism: identical on recomputation.
			b2 := TriRanges(m, workers)
			for i := range b {
				if b[i] != b2[i] {
					t.Fatalf("TriRanges(%d,%d) not deterministic: %v vs %v", m, workers, b, b2)
				}
			}
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestForTriCoversRangeOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 7, 16, 100} {
		for _, m := range []int{0, 1, 2, 5, 63, 64, 573} {
			hits := make([]int32, m)
			ForTri(workers, m, 0, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d m=%d: row %d visited %d times", workers, m, i, h)
				}
			}
		}
	}
}

func TestForTriMatchesTriRanges(t *testing.T) {
	// ForTri's closed-form per-chunk boundaries must agree with the
	// TriRanges slice — same decomposition, computed without allocating.
	for _, workers := range []int{2, 4, 8} {
		for _, m := range []int{5, 17, 100, 573} {
			var mu sync.Mutex
			got := make(map[int]int)
			ForTri(workers, m, 0, func(lo, hi int) {
				mu.Lock()
				got[lo] = hi
				mu.Unlock()
			})
			b := TriRanges(m, workers)
			want := 0
			for c := 0; c+1 < len(b); c++ {
				if b[c] == b[c+1] {
					continue // empty chunk: fn is still called, range is empty
				}
				want++
				if hi, ok := got[b[c]]; !ok || hi != b[c+1] {
					t.Fatalf("m=%d w=%d: chunk [%d,%d) missing or mismatched (got hi=%d)", m, workers, b[c], b[c+1], hi)
				}
			}
		}
	}
}

func TestForTriSequentialFallback(t *testing.T) {
	calls := 0
	ForTri(8, 100, 1<<30, func(lo, hi int) {
		calls++
		if lo != 0 || hi != 100 {
			t.Fatalf("fallback got [%d,%d), want [0,100)", lo, hi)
		}
	})
	if calls != 1 {
		t.Fatalf("fallback ran %d chunks, want 1", calls)
	}
}

// TestDispatchNoSteadyStateAllocs pins the zero-allocation contract the CI
// alloc gate depends on: once the job free list is warm, For, ForChunked,
// and ForTri allocate nothing per call beyond the caller's own closure.
func TestDispatchNoSteadyStateAllocs(t *testing.T) {
	const n = 1024
	buf := make([]float64, n)
	fn := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			buf[i]++
		}
	}
	fnc := func(_, lo, hi int) { fn(lo, hi) }
	For(4, n, 0, fn) // warm the free list and the pool
	ForChunked(4, n, 0, fnc)
	ForTri(4, n, 0, fn)
	cases := []struct {
		name string
		call func()
	}{
		{"For", func() { For(4, n, 0, fn) }},
		{"ForChunked", func() { ForChunked(4, n, 0, fnc) }},
		{"ForTri", func() { ForTri(4, n, 0, fn) }},
	}
	for _, c := range cases {
		if avg := testing.AllocsPerRun(20, c.call); avg != 0 {
			t.Errorf("%s allocates %.1f times per call in steady state, want 0", c.name, avg)
		}
	}
}

func TestNestedForTriNoDeadlock(t *testing.T) {
	var total int64
	ForTri(8, 8, 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ForTri(8, 100, 0, func(lo2, hi2 int) {
				atomic.AddInt64(&total, int64(hi2-lo2))
			})
		}
	})
	if total != 800 {
		t.Fatalf("nested total = %d, want 800", total)
	}
}
