// Package parallel provides the shared worker pool behind the solver's
// dense-kernel parallelism: a chunked parallel-for (no work stealing) over a
// size-capped set of goroutines started on first use.
//
// Design constraints, in order:
//
//   - Determinism. Every helper splits its index space into contiguous
//     chunks whose boundaries depend only on (n, workers). Callers arrange
//     for chunks to write disjoint outputs (or reduce per-chunk partials in
//     chunk-index order), so results are bitwise-reproducible for a fixed
//     worker count — and, when per-element operation order is unchanged,
//     across all worker counts.
//   - Bounded concurrency. One process-wide pool serves every concurrent
//     solve: a job may request any chunk count, but at most poolSize
//     goroutines ever run chunks at once, so service-level concurrency ×
//     per-solve parallelism cannot oversubscribe the machine.
//   - No deadlocks under saturation. Chunk submission never blocks: if no
//     pool worker is free the caller runs the chunk inline, so nested
//     parallel-for calls (a parallel kernel inside a parallel solve) always
//     make progress.
//
// The pool size defaults to GOMAXPROCS and can be overridden with the
// SDPFLOOR_WORKERS environment variable. Worker counts requested per call
// are chunk counts, not goroutine counts: asking for 8 chunks on a 2-core
// pool still yields the 8-chunk (deterministic) decomposition, executed at
// most 2 at a time.
package parallel

import (
	"math"
	"os"
	"runtime"
	"strconv"
	"sync"
)

var (
	initOnce sync.Once
	poolSize int
	tasks    chan func()
)

// setup starts the shared pool on first use. poolSize-1 background
// goroutines are spawned (the caller of For/Do always executes one chunk
// itself), with a floor of one so that single-CPU machines still exercise
// real concurrency (and the race detector sees it).
func setup() {
	initOnce.Do(func() {
		poolSize = EnvWorkers(os.Getenv("SDPFLOOR_WORKERS"), runtime.GOMAXPROCS(0))
		bg := poolSize - 1
		if bg < 1 {
			bg = 1
		}
		tasks = make(chan func())
		for i := 0; i < bg; i++ {
			go func() {
				for f := range tasks {
					f()
				}
			}()
		}
	})
}

// EnvWorkers resolves the pool size from an SDPFLOOR_WORKERS value and the
// GOMAXPROCS fallback: a positive integer wins, anything else (empty,
// malformed, non-positive) falls back. Exposed for testability; the pool
// itself reads the environment once, at first use.
func EnvWorkers(env string, fallback int) int {
	if v, err := strconv.Atoi(env); err == nil && v > 0 {
		return v
	}
	if fallback < 1 {
		return 1
	}
	return fallback
}

// Default returns the shared pool size — the natural per-solve worker count
// when a single job owns the machine.
func Default() int {
	setup()
	return poolSize
}

// Workers resolves a requested worker count: values ≤ 0 select the shared
// default (GOMAXPROCS or the SDPFLOOR_WORKERS override); positive values are
// returned unchanged, so a job can be restricted to fewer cores than the
// machine has (or ask for a fixed chunk layout larger than it).
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return Default()
}

// For splits [0, n) into `workers` fixed contiguous chunks and runs fn over
// each, concurrently on the shared pool. Chunk boundaries are
// chunk c = [c·n/w, (c+1)·n/w), depending only on (n, workers). fn must
// treat its [lo, hi) range as exclusive property; chunks run in unspecified
// order and concurrently.
//
// Sequential fallback: workers ≤ 1 or n < minPar runs fn(0, n) on the
// calling goroutine — small problems skip the fork/join cost entirely.
func For(workers, n, minPar int, fn func(lo, hi int)) {
	ForChunked(workers, n, minPar, func(_, lo, hi int) { fn(lo, hi) })
}

// ForChunked is For with the chunk index passed to fn — for callers that
// accumulate into per-chunk partials and reduce them in chunk order.
// The sequential fallback runs fn(0, 0, n).
func ForChunked(workers, n, minPar int, fn func(chunk, lo, hi int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 || n < minPar {
		fn(0, 0, n)
		return
	}
	setup()
	var wg sync.WaitGroup
	wg.Add(workers - 1)
	for c := 1; c < workers; c++ {
		c, lo, hi := c, c*n/workers, (c+1)*n/workers
		f := func() {
			defer wg.Done()
			fn(c, lo, hi)
		}
		select {
		case tasks <- f:
		default:
			f() // pool saturated: run inline, never block
		}
	}
	fn(0, 0, n/workers)
	wg.Wait()
}

// Chunks returns the number of chunks ForChunked will use for (workers, n,
// minPar) — callers sizing per-chunk partial buffers must match its layout.
func Chunks(workers, n, minPar int) int {
	if n <= 0 {
		return 0
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 || n < minPar {
		return 1
	}
	return workers
}

// Do runs the given thunks concurrently on the shared pool (the first on the
// calling goroutine) and returns when all have completed. Use it when the
// work does not decompose into a flat index range — e.g. per-block
// eigendecompositions or triangular row ranges of unequal length.
func Do(thunks ...func()) {
	switch len(thunks) {
	case 0:
		return
	case 1:
		thunks[0]()
		return
	}
	setup()
	var wg sync.WaitGroup
	wg.Add(len(thunks) - 1)
	for _, f := range thunks[1:] {
		f := f
		g := func() {
			defer wg.Done()
			f()
		}
		select {
		case tasks <- g:
		default:
			g()
		}
	}
	thunks[0]()
	wg.Wait()
}

// TriRanges splits the rows of a lower-triangular sweep (row k holding k+1
// elements, m rows, m(m+1)/2 elements total) into at most `workers` row
// ranges of roughly equal element count, so chunk runtimes balance without
// work stealing. Returns boundaries b with len(b) = chunks+1, b[0] = 0,
// b[last] = m; chunk c covers rows [b[c], b[c+1]). Boundaries depend only on
// (m, workers).
func TriRanges(m, workers int) []int {
	if workers < 1 {
		workers = 1
	}
	if workers > m {
		workers = m
	}
	b := make([]int, 0, workers+1)
	b = append(b, 0)
	total := m * (m + 1) / 2
	for c := 1; c < workers; c++ {
		target := c * total / workers
		// Smallest k with k(k+1)/2 ≥ target; the float seed is corrected by
		// integer comparison so the result is exact on every platform.
		k := int((math.Sqrt(8*float64(target)+1) - 1) / 2)
		for k > 0 && k*(k+1)/2 >= target {
			k--
		}
		for k*(k+1)/2 < target {
			k++
		}
		if last := b[len(b)-1]; k < last {
			k = last
		}
		if k > m {
			k = m
		}
		b = append(b, k)
	}
	b = append(b, m)
	return b
}
