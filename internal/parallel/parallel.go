// Package parallel provides the shared worker pool behind the solver's
// dense-kernel parallelism: a chunked parallel-for (no work stealing) over a
// size-capped set of goroutines started on first use.
//
// Design constraints, in order:
//
//   - Determinism. Every helper splits its index space into contiguous
//     chunks whose boundaries depend only on (n, workers). Callers arrange
//     for chunks to write disjoint outputs (or reduce per-chunk partials in
//     chunk-index order), so results are bitwise-reproducible for a fixed
//     worker count — and, when per-element operation order is unchanged,
//     across all worker counts.
//   - Bounded concurrency. One process-wide pool serves every concurrent
//     solve: a job may request any chunk count, but at most poolSize
//     goroutines ever run chunks at once, so service-level concurrency ×
//     per-solve parallelism cannot oversubscribe the machine.
//   - No deadlocks under saturation. Job submission never blocks: if no
//     pool worker is free the caller runs the remaining chunks inline, so
//     nested parallel-for calls (a parallel kernel inside a parallel solve)
//     always make progress.
//   - Zero steady-state allocation. A dispatch borrows a job descriptor from
//     a process-wide free list (a mutex-guarded stack, deliberately not a
//     sync.Pool: GC never drains it, so allocs/op is deterministic) and
//     chunks are claimed from an atomic counter — no per-chunk closures or
//     range slices. For/ForChunked/ForTri allocate nothing beyond whatever
//     closure the caller passes in.
//
// The pool size defaults to GOMAXPROCS and can be overridden with the
// SDPFLOOR_WORKERS environment variable. Worker counts requested per call
// are chunk counts, not goroutine counts: asking for 8 chunks on a 2-core
// pool still yields the 8-chunk (deterministic) decomposition, executed at
// most 2 at a time.
package parallel

import (
	"math"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
)

var (
	initOnce sync.Once
	poolSize int
	tasks    chan *job
)

// job is one parallel-for dispatch in flight. The caller and any pool
// workers that picked the job up claim chunks from the shared atomic
// counter; chunk boundaries are recomputed from (n, w, chunk) on demand so
// the descriptor carries no per-chunk state.
type job struct {
	fn   func(lo, hi int)        // For / ForTri body (nil when fnc is set)
	fnc  func(chunk, lo, hi int) // ForChunked body
	n    int                     // index range (rows, for tri jobs)
	w    int                     // chunk count
	tri  bool                    // triangular-balanced boundaries
	next int64                   // atomic: next unclaimed chunk

	chunks  sync.WaitGroup // one count per chunk; Done as each completes
	helpers sync.WaitGroup // one count per pool worker holding the job
}

// runChunks claims and executes chunks until none remain. Called by the
// dispatching goroutine and by every pool worker that received the job.
func (j *job) runChunks() {
	for {
		c := int(atomic.AddInt64(&j.next, 1)) - 1
		if c >= j.w {
			return
		}
		var lo, hi int
		if j.tri {
			lo, hi = triBound(j.n, j.w, c), triBound(j.n, j.w, c+1)
		} else {
			lo, hi = c*j.n/j.w, (c+1)*j.n/j.w
		}
		if j.fnc != nil {
			j.fnc(c, lo, hi)
		} else {
			j.fn(lo, hi)
		}
		j.chunks.Done()
	}
}

// jobFree is the process-wide descriptor free list. A plain mutex-guarded
// stack rather than a sync.Pool: it grows to the peak number of concurrent
// dispatches and is never drained by the GC, so allocation counts in the
// steady state are exactly zero — which the alloc-gate CI check relies on.
var jobFree struct {
	sync.Mutex
	list []*job
}

func getJob() *job {
	jobFree.Lock()
	if n := len(jobFree.list); n > 0 {
		j := jobFree.list[n-1]
		jobFree.list = jobFree.list[:n-1]
		jobFree.Unlock()
		return j
	}
	jobFree.Unlock()
	return new(job)
}

func putJob(j *job) {
	j.fn, j.fnc = nil, nil // do not retain caller closures
	jobFree.Lock()
	jobFree.list = append(jobFree.list, j)
	jobFree.Unlock()
}

// dispatch runs a prepared job: it offers the job to idle pool workers
// (never blocking — an unbuffered send only succeeds when a worker is
// parked on the channel) and then helps drain chunks itself. On return all
// chunks have completed and no other goroutine references the job.
func (j *job) dispatch() {
	setup()
	atomic.StoreInt64(&j.next, 0)
	j.chunks.Add(j.w)
	for c := 1; c < j.w; c++ {
		j.helpers.Add(1)
		select {
		case tasks <- j:
		default:
			j.helpers.Add(-1) // pool saturated: the caller will run it inline
		}
	}
	j.runChunks()
	j.chunks.Wait()
	j.helpers.Wait() // workers must release the job before it is recycled
}

// setup starts the shared pool on first use. poolSize-1 background
// goroutines are spawned (the caller of For/Do always executes chunks
// itself), with a floor of one so that single-CPU machines still exercise
// real concurrency (and the race detector sees it).
func setup() {
	initOnce.Do(func() {
		poolSize = EnvWorkers(os.Getenv("SDPFLOOR_WORKERS"), runtime.GOMAXPROCS(0))
		bg := poolSize - 1
		if bg < 1 {
			bg = 1
		}
		tasks = make(chan *job)
		for i := 0; i < bg; i++ {
			go func() {
				for j := range tasks {
					j.runChunks()
					j.helpers.Done()
				}
			}()
		}
	})
}

// EnvWorkers resolves the pool size from an SDPFLOOR_WORKERS value and the
// GOMAXPROCS fallback: a positive integer wins, anything else (empty,
// malformed, non-positive) falls back. Exposed for testability; the pool
// itself reads the environment once, at first use.
func EnvWorkers(env string, fallback int) int {
	if v, err := strconv.Atoi(env); err == nil && v > 0 {
		return v
	}
	if fallback < 1 {
		return 1
	}
	return fallback
}

// Default returns the shared pool size — the natural per-solve worker count
// when a single job owns the machine.
func Default() int {
	setup()
	return poolSize
}

// Workers resolves a requested worker count: values ≤ 0 select the shared
// default (GOMAXPROCS or the SDPFLOOR_WORKERS override); positive values are
// returned unchanged, so a job can be restricted to fewer cores than the
// machine has (or ask for a fixed chunk layout larger than it).
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return Default()
}

// For splits [0, n) into `workers` fixed contiguous chunks and runs fn over
// each, concurrently on the shared pool. Chunk boundaries are
// chunk c = [c·n/w, (c+1)·n/w), depending only on (n, workers). fn must
// treat its [lo, hi) range as exclusive property; chunks run in unspecified
// order and concurrently.
//
// Sequential fallback: workers ≤ 1 or n < minPar runs fn(0, n) on the
// calling goroutine — small problems skip the fork/join cost entirely.
func For(workers, n, minPar int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 || n < minPar {
		fn(0, n)
		return
	}
	j := getJob()
	j.fn, j.n, j.w, j.tri = fn, n, workers, false
	j.dispatch()
	putJob(j)
}

// ForChunked is For with the chunk index passed to fn — for callers that
// accumulate into per-chunk partials and reduce them in chunk order.
// The sequential fallback runs fn(0, 0, n).
func ForChunked(workers, n, minPar int, fn func(chunk, lo, hi int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 || n < minPar {
		fn(0, 0, n)
		return
	}
	j := getJob()
	j.fnc, j.n, j.w, j.tri = fn, n, workers, false
	j.dispatch()
	putJob(j)
}

// ForTri splits the rows of a lower-triangular sweep (row k holding k+1
// elements, m rows) into at most `workers` contiguous row ranges of roughly
// equal element count and runs fn over each on the shared pool — the
// zero-allocation replacement for TriRanges + Do in triangular kernels.
// Boundaries depend only on (m, workers), computed per chunk in closed form.
//
// Sequential fallback: workers ≤ 1 or fewer than minPar total elements
// (m(m+1)/2 < minPar) runs fn(0, m) on the calling goroutine.
func ForTri(workers, m, minPar int, fn func(lo, hi int)) {
	if m <= 0 {
		return
	}
	if workers > m {
		workers = m
	}
	if workers <= 1 || m*(m+1)/2 < minPar {
		fn(0, m)
		return
	}
	j := getJob()
	j.fn, j.n, j.w, j.tri = fn, m, workers, true
	j.dispatch()
	putJob(j)
}

// Chunks returns the number of chunks ForChunked will use for (workers, n,
// minPar) — callers sizing per-chunk partial buffers must match its layout.
func Chunks(workers, n, minPar int) int {
	if n <= 0 {
		return 0
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 || n < minPar {
		return 1
	}
	return workers
}

// Do runs the given thunks concurrently on the shared pool and returns when
// all have completed. Use it for one-off heterogeneous work that does not
// decompose into a flat index range; hot loops should prefer For/ForTri,
// which allocate nothing per call.
func Do(thunks ...func()) {
	switch len(thunks) {
	case 0:
		return
	case 1:
		thunks[0]()
		return
	}
	ForChunked(len(thunks), len(thunks), 0, func(c, _, _ int) { thunks[c]() })
}

// triBound returns the row boundary before chunk c of a triangular sweep
// split `workers` ways over m rows: the smallest k whose leading element
// count k(k+1)/2 reaches c's proportional share. triBound(m, w, 0) = 0 and
// triBound(m, w, w) = m; boundaries are non-decreasing in c and depend only
// on (m, workers).
func triBound(m, workers, c int) int {
	if c <= 0 {
		return 0
	}
	if c >= workers {
		return m
	}
	total := m * (m + 1) / 2
	target := c * total / workers
	// Smallest k with k(k+1)/2 ≥ target; the float seed is corrected by
	// integer comparison so the result is exact on every platform.
	k := int((math.Sqrt(8*float64(target)+1) - 1) / 2)
	for k > 0 && k*(k+1)/2 >= target {
		k--
	}
	for k*(k+1)/2 < target {
		k++
	}
	if k > m {
		k = m
	}
	return k
}

// TriRanges returns the full boundary slice for a triangular sweep: b with
// len(b) = chunks+1, b[0] = 0, b[last] = m; chunk c covers rows
// [b[c], b[c+1]). It allocates; chunk-at-a-time callers should use ForTri,
// which computes the same boundaries in closed form per chunk.
func TriRanges(m, workers int) []int {
	if workers > m {
		workers = m
	}
	if workers < 1 {
		workers = 1
	}
	b := make([]int, workers+1)
	for c := range b {
		b[c] = triBound(m, workers, c)
	}
	return b
}
