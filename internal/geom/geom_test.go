package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPointOps(t *testing.T) {
	p, q := Point{1, 2}, Point{4, 6}
	if p.Add(q) != (Point{5, 8}) {
		t.Fatal("Add wrong")
	}
	if q.Sub(p) != (Point{3, 4}) {
		t.Fatal("Sub wrong")
	}
	if p.Scale(2) != (Point{2, 4}) {
		t.Fatal("Scale wrong")
	}
	if math.Abs(p.Dist(q)-5) > 1e-15 {
		t.Fatalf("Dist = %g", p.Dist(q))
	}
	if p.DistSq(q) != 25 {
		t.Fatalf("DistSq = %g", p.DistSq(q))
	}
	if p.Manhattan(q) != 7 {
		t.Fatalf("Manhattan = %g", p.Manhattan(q))
	}
}

func TestDistTriangleInequality(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy float64) bool {
		// Clamp to avoid overflow from quick's extreme values.
		cl := func(v float64) float64 {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 0
			}
			return math.Mod(v, 1e6)
		}
		a := Point{cl(ax), cl(ay)}
		b := Point{cl(bx), cl(by)}
		c := Point{cl(cx), cl(cy)}
		return a.Dist(c) <= a.Dist(b)+b.Dist(c)+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRect(t *testing.T) {
	r := NewRectCenter(Point{5, 5}, 4, 2)
	if r.MinX != 3 || r.MaxX != 7 || r.MinY != 4 || r.MaxY != 6 {
		t.Fatalf("NewRectCenter = %+v", r)
	}
	if r.W() != 4 || r.H() != 2 || r.Area() != 8 {
		t.Fatal("dims wrong")
	}
	if r.Center() != (Point{5, 5}) {
		t.Fatal("Center wrong")
	}
	if !r.Contains(Point{3, 4}) || r.Contains(Point{2.9, 4}) {
		t.Fatal("Contains wrong")
	}
}

func TestRectOverlap(t *testing.T) {
	a := Rect{0, 0, 4, 4}
	b := Rect{2, 2, 6, 6}
	if a.Overlap(b) != 4 {
		t.Fatalf("Overlap = %g, want 4", a.Overlap(b))
	}
	c := Rect{5, 5, 6, 6}
	if a.Overlap(c) != 0 {
		t.Fatal("disjoint rects should not overlap")
	}
	if !a.Intersects(b, 0) || a.Intersects(c, 0) {
		t.Fatal("Intersects wrong")
	}
	// Touching rectangles do not intersect.
	d := Rect{4, 0, 8, 4}
	if a.Intersects(d, 0) {
		t.Fatal("touching rects should not intersect")
	}
}

func TestRectUnionContains(t *testing.T) {
	a := Rect{0, 0, 1, 1}
	b := Rect{2, -1, 3, 0.5}
	u := a.Union(b)
	if !u.ContainsRect(a, 0) || !u.ContainsRect(b, 0) {
		t.Fatal("Union does not contain operands")
	}
	if u != (Rect{0, -1, 3, 1}) {
		t.Fatalf("Union = %+v", u)
	}
}

func TestOverlapSymmetricProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 200; i++ {
		a := Rect{rng.Float64() * 10, rng.Float64() * 10, 0, 0}
		a.MaxX = a.MinX + rng.Float64()*5
		a.MaxY = a.MinY + rng.Float64()*5
		b := Rect{rng.Float64() * 10, rng.Float64() * 10, 0, 0}
		b.MaxX = b.MinX + rng.Float64()*5
		b.MaxY = b.MinY + rng.Float64()*5
		if math.Abs(a.Overlap(b)-b.Overlap(a)) > 1e-12 {
			t.Fatal("Overlap not symmetric")
		}
		if a.Overlap(b) > math.Min(a.Area(), b.Area())+1e-12 {
			t.Fatal("Overlap exceeds min area")
		}
	}
}

func TestBBox(t *testing.T) {
	var b BBox
	if !b.Empty() || b.HalfPerimeter() != 0 {
		t.Fatal("zero BBox should be empty")
	}
	b.Extend(Point{1, 1})
	if b.HalfPerimeter() != 0 {
		t.Fatal("single point box has zero half-perimeter")
	}
	b.Extend(Point{4, 5})
	if b.HalfPerimeter() != 7 {
		t.Fatalf("HalfPerimeter = %g, want 7", b.HalfPerimeter())
	}
	r := b.Rect()
	if r != (Rect{1, 1, 4, 5}) {
		t.Fatalf("Rect = %+v", r)
	}
	if !b.OnBoundary(Point{1, 3}, 1e-9) {
		t.Fatal("point on left edge should be on boundary")
	}
	if b.OnBoundary(Point{2.5, 3}, 1e-9) {
		t.Fatal("interior point should not be on boundary")
	}
}

func TestBBoxOrderInvariantProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 50; trial++ {
		pts := make([]Point, 2+rng.Intn(8))
		for i := range pts {
			pts[i] = Point{rng.NormFloat64() * 10, rng.NormFloat64() * 10}
		}
		var fwd, rev BBox
		for _, p := range pts {
			fwd.Extend(p)
		}
		for i := len(pts) - 1; i >= 0; i-- {
			rev.Extend(pts[i])
		}
		if math.Abs(fwd.HalfPerimeter()-rev.HalfPerimeter()) > 1e-12 {
			t.Fatal("BBox depends on insertion order")
		}
	}
}

func TestCheckLayout(t *testing.T) {
	out := Rect{0, 0, 10, 10}
	legal := []Rect{{0, 0, 4, 4}, {4, 0, 8, 4}, {0, 4, 4, 10}}
	if err := CheckLayout(legal, out, 1e-9); err != nil {
		t.Fatal(err)
	}
	overlapping := []Rect{{0, 0, 4, 4}, {3, 3, 6, 6}}
	if CheckLayout(overlapping, out, 1e-9) == nil {
		t.Fatal("expected overlap error")
	}
	escaping := []Rect{{8, 8, 12, 12}}
	if CheckLayout(escaping, out, 1e-9) == nil {
		t.Fatal("expected outline error")
	}
}

func TestStats(t *testing.T) {
	out := Rect{0, 0, 10, 10}
	rects := []Rect{{0, 0, 5, 4}, {5, 0, 10, 4}}
	st := Stats(rects, out)
	if st.Area != 40 || st.Utilized != 0.4 {
		t.Fatalf("stats = %+v", st)
	}
	if st.MaxOverlap != 0 {
		t.Fatalf("MaxOverlap = %g for disjoint rects", st.MaxOverlap)
	}
	if st.BBox != (Rect{0, 0, 10, 4}) {
		t.Fatalf("BBox = %+v", st.BBox)
	}
	over := Stats([]Rect{{0, 0, 4, 4}, {2, 2, 6, 6}}, out)
	if over.MaxOverlap != 4 {
		t.Fatalf("MaxOverlap = %g, want 4", over.MaxOverlap)
	}
}
