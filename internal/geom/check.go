package geom

import "fmt"

// CheckLayout validates a legalized floorplan: every rectangle inside the
// outline (within tol) and no two rectangles overlapping (beyond tol).
// Returns nil when legal, or an error naming the first violation.
func CheckLayout(rects []Rect, outline Rect, tol float64) error {
	for i, r := range rects {
		if !outline.ContainsRect(r, tol) {
			return fmt.Errorf("geom: rect %d %+v escapes outline %+v", i, r, outline)
		}
	}
	for i := range rects {
		for j := i + 1; j < len(rects); j++ {
			if rects[i].Intersects(rects[j], tol) {
				return fmt.Errorf("geom: rects %d and %d overlap by %.3g area",
					i, j, rects[i].Overlap(rects[j]))
			}
		}
	}
	return nil
}

// LayoutStats summarizes a floorplan for reporting.
type LayoutStats struct {
	Area       float64 // Σ rect areas
	Utilized   float64 // Area / outline area
	MaxOverlap float64 // largest pairwise overlap area (0 when legal)
	BBox       Rect    // bounding box of the rectangles
}

// Stats computes LayoutStats for the rectangles against the outline.
func Stats(rects []Rect, outline Rect) LayoutStats {
	st := LayoutStats{}
	var bb BBox
	for i, r := range rects {
		st.Area += r.Area()
		bb.Extend(Point{X: r.MinX, Y: r.MinY})
		bb.Extend(Point{X: r.MaxX, Y: r.MaxY})
		for j := i + 1; j < len(rects); j++ {
			if ov := r.Overlap(rects[j]); ov > st.MaxOverlap {
				st.MaxOverlap = ov
			}
		}
	}
	if outline.Area() > 0 {
		st.Utilized = st.Area / outline.Area()
	}
	st.BBox = bb.Rect()
	return st
}
