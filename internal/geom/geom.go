// Package geom provides the 2-D primitives used by the floorplanner: points,
// rectangles, bounding boxes, and distance computations.
package geom

import "math"

// Point is a location in the plane.
type Point struct {
	X, Y float64
}

// Add returns p + q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p − q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns a*p.
func (p Point) Scale(a float64) Point { return Point{a * p.X, a * p.Y} }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 { return math.Hypot(p.X-q.X, p.Y-q.Y) }

// DistSq returns the squared Euclidean distance between p and q.
func (p Point) DistSq(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Manhattan returns the L1 distance between p and q.
func (p Point) Manhattan(q Point) float64 {
	return math.Abs(p.X-q.X) + math.Abs(p.Y-q.Y)
}

// Rect is an axis-aligned rectangle described by its lower-left and
// upper-right corners.
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

// NewRectCenter builds a rectangle from a center point and dimensions.
func NewRectCenter(c Point, w, h float64) Rect {
	return Rect{MinX: c.X - w/2, MinY: c.Y - h/2, MaxX: c.X + w/2, MaxY: c.Y + h/2}
}

// W returns the width of r.
func (r Rect) W() float64 { return r.MaxX - r.MinX }

// H returns the height of r.
func (r Rect) H() float64 { return r.MaxY - r.MinY }

// Area returns the area of r.
func (r Rect) Area() float64 { return r.W() * r.H() }

// Center returns the center point of r.
func (r Rect) Center() Point { return Point{(r.MinX + r.MaxX) / 2, (r.MinY + r.MaxY) / 2} }

// Contains reports whether p lies inside or on the boundary of r.
func (r Rect) Contains(p Point) bool {
	return p.X >= r.MinX && p.X <= r.MaxX && p.Y >= r.MinY && p.Y <= r.MaxY
}

// ContainsRect reports whether s lies entirely within r (with tolerance tol:
// s may stick out by at most tol on each side).
func (r Rect) ContainsRect(s Rect, tol float64) bool {
	return s.MinX >= r.MinX-tol && s.MinY >= r.MinY-tol &&
		s.MaxX <= r.MaxX+tol && s.MaxY <= r.MaxY+tol
}

// Overlap returns the area of the intersection of r and s (0 if disjoint).
func (r Rect) Overlap(s Rect) float64 {
	w := math.Min(r.MaxX, s.MaxX) - math.Max(r.MinX, s.MinX)
	h := math.Min(r.MaxY, s.MaxY) - math.Max(r.MinY, s.MinY)
	if w <= 0 || h <= 0 {
		return 0
	}
	return w * h
}

// Intersects reports whether r and s overlap with positive area beyond tol.
func (r Rect) Intersects(s Rect, tol float64) bool {
	w := math.Min(r.MaxX, s.MaxX) - math.Max(r.MinX, s.MinX)
	h := math.Min(r.MaxY, s.MaxY) - math.Max(r.MinY, s.MinY)
	return w > tol && h > tol
}

// Union returns the bounding box of r and s.
func (r Rect) Union(s Rect) Rect {
	return Rect{
		MinX: math.Min(r.MinX, s.MinX), MinY: math.Min(r.MinY, s.MinY),
		MaxX: math.Max(r.MaxX, s.MaxX), MaxY: math.Max(r.MaxY, s.MaxY),
	}
}

// BBox is a running bounding box accumulator. The zero value is empty.
type BBox struct {
	set                    bool
	minX, minY, maxX, maxY float64
}

// Extend grows the box to include p.
func (b *BBox) Extend(p Point) {
	if !b.set {
		b.set = true
		b.minX, b.maxX = p.X, p.X
		b.minY, b.maxY = p.Y, p.Y
		return
	}
	b.minX = math.Min(b.minX, p.X)
	b.maxX = math.Max(b.maxX, p.X)
	b.minY = math.Min(b.minY, p.Y)
	b.maxY = math.Max(b.maxY, p.Y)
}

// Empty reports whether no point has been added.
func (b *BBox) Empty() bool { return !b.set }

// HalfPerimeter returns (width + height) of the accumulated box, the HPWL
// contribution of a net whose pins were Extended into b. Zero when empty.
func (b *BBox) HalfPerimeter() float64 {
	if !b.set {
		return 0
	}
	return (b.maxX - b.minX) + (b.maxY - b.minY)
}

// Rect returns the accumulated box (zero Rect when empty).
func (b *BBox) Rect() Rect {
	if !b.set {
		return Rect{}
	}
	return Rect{MinX: b.minX, MinY: b.minY, MaxX: b.maxX, MaxY: b.maxY}
}

// OnBoundary reports whether p is on the boundary of the accumulated box
// within tol (used by the hyper-edge adaptation of Eq. 20: only pins on the
// bounding box of the net influence the adaptive weights).
func (b *BBox) OnBoundary(p Point, tol float64) bool {
	if !b.set {
		return false
	}
	return math.Abs(p.X-b.minX) <= tol || math.Abs(p.X-b.maxX) <= tol ||
		math.Abs(p.Y-b.minY) <= tol || math.Abs(p.Y-b.maxY) <= tol
}
