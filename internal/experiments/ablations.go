package experiments

import (
	"fmt"
	"io"
	"time"

	"sdpfloor/internal/cluster"
	"sdpfloor/internal/core"
	"sdpfloor/internal/gsrc"
	"sdpfloor/internal/legalize"
)

// Ablations runs the design-choice studies of DESIGN.md §5 (also available
// as Benchmark* targets) and prints one CSV row per configuration:
// lazy working set vs full constraint set, IPM vs ADMM, net models, and
// flat vs hierarchical.
func Ablations(w io.Writer, mode Mode) error {
	bench := "n10"
	if !mode.Quick {
		bench = "n30"
	}
	d, err := gsrc.Builtin(bench, 1, 0.15)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "# Ablations on %s (see DESIGN.md §5)\n", bench)
	fmt.Fprintln(w, "study,config,seconds,objective,hpwl")

	budget := core.Options{MaxIter: 8, AlphaMaxDoublings: 5, Outline: &d.Outline}
	if mode.Full {
		budget.MaxIter = 15
		budget.AlphaMaxDoublings = 8
	}

	run := func(study, config string, opt core.Options) error {
		start := time.Now()
		res, err := core.Solve(d.Netlist, opt)
		if err != nil {
			return fmt.Errorf("%s/%s: %w", study, config, err)
		}
		leg, err := legalize.Legalize(d.Netlist, res.Centers, legalize.Options{Outline: d.Outline})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%s,%s,%.2f,%.0f,%.0f\n",
			study, config, time.Since(start).Seconds(), res.Objective, leg.HPWL)
		return nil
	}

	// Lazy working set vs full constraint set.
	full := budget
	if err := run("constraints", "full", full); err != nil {
		return err
	}
	lazy := budget
	lazy.LazyConstraints = true
	if err := run("constraints", "lazy", lazy); err != nil {
		return err
	}

	// Sub-problem-1 solver.
	ipm := budget
	ipm.MaxIter = 1
	ipm.AlphaMaxDoublings = 1
	ipm.Alpha0 = 8
	ipm.LazyConstraints = true
	if err := run("solver", "ipm", ipm); err != nil {
		return err
	}
	admm := ipm
	admm.Solver = core.SolverADMM
	admm.SolverMaxIter = 4000
	if err := run("solver", "admm", admm); err != nil {
		return err
	}

	// Net models (Eq. 20 stack).
	for _, v := range []struct {
		name string
		set  func(o *core.Options)
	}{
		{"clique", func(o *core.Options) {}},
		{"manhattan", func(o *core.Options) { o.Manhattan = true }},
		{"hyperedge", func(o *core.Options) { o.Manhattan = true; o.HyperEdge = true }},
	} {
		opt := budget
		opt.LazyConstraints = true
		v.set(&opt)
		if err := run("netmodel", v.name, opt); err != nil {
			return err
		}
	}

	// Flat vs hierarchical.
	flat := budget.WithAllEnhancements()
	flat.LazyConstraints = true
	if err := run("hierarchy", "flat", flat); err != nil {
		return err
	}
	start := time.Now()
	h, err := cluster.Solve(d.Netlist, cluster.Options{
		Outline: d.Outline, Top: budget, Refine: budget,
	})
	if err != nil {
		return err
	}
	leg, err := legalize.Legalize(d.Netlist, h.Centers, legalize.Options{Outline: d.Outline})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "hierarchy,two-level,%.2f,,%.0f\n", time.Since(start).Seconds(), leg.HPWL)
	return nil
}
