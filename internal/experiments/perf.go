package experiments

import (
	"fmt"
	"io"
	"math"
	"time"

	"sdpfloor/internal/core"
	"sdpfloor/internal/gsrc"
	"sdpfloor/internal/legalize"
)

// fig4Variant is one technique stack from Fig. 4.
type fig4Variant struct {
	name string
	opt  func(o core.Options) core.Options
}

var fig4Variants = []fig4Variant{
	{"basic", func(o core.Options) core.Options { return o }},
	{"+nonsquare", func(o core.Options) core.Options { o.NonSquare = true; return o }},
	{"+manhattan", func(o core.Options) core.Options { o.NonSquare = true; o.Manhattan = true; return o }},
	{"+hyperedge", func(o core.Options) core.Options {
		o.NonSquare = true
		o.Manhattan = true
		o.HyperEdge = true
		return o
	}},
}

// Fig4Alphas returns the α sweep for the mode.
func Fig4Alphas(mode Mode) []float64 {
	switch {
	case mode.Quick:
		return []float64{8, 128}
	case mode.Full:
		return []float64{0.5, 2, 8, 32, 128, 512, 1024}
	default:
		return []float64{2, 8, 32, 128, 512}
	}
}

// Fig4Benchmarks returns the benchmark list for the mode.
func Fig4Benchmarks(mode Mode) []string {
	switch {
	case mode.Quick:
		return []string{"n10"}
	case mode.Full:
		return []string{"n10", "n30", "n50", "n100"}
	default:
		return []string{"n10", "n30"}
	}
}

// Fig4 regenerates the α–HPWL study: for each benchmark and each technique
// stack, run the convex iteration at a fixed α and report the legalized
// HPWL (empty cells mark legalization failures — the paper's missing
// points).
func Fig4(w io.Writer, mode Mode) error {
	fmt.Fprintln(w, "# Fig.4 — alpha vs legalized HPWL per technique stack")
	fmt.Fprintln(w, "benchmark,variant,alpha,hpwl,rank_ok,feasible")
	for _, bench := range Fig4Benchmarks(mode) {
		d, err := gsrc.Builtin(bench, 1, 0.15)
		if err != nil {
			return err
		}
		for _, v := range fig4Variants {
			for _, alpha := range Fig4Alphas(mode) {
				opt := v.opt(core.Options{
					Alpha0:            alpha,
					AlphaMaxDoublings: 1, // fixed α, as in the figure
					MaxIter:           fig4MaxIter(mode),
					Outline:           &d.Outline,
					LazyConstraints:   true,
				})
				res, err := core.Solve(d.Netlist, opt)
				if err != nil {
					return err
				}
				leg, err := legalize.Legalize(d.Netlist, res.Centers, legalize.Options{Outline: d.Outline})
				if err != nil {
					return err
				}
				hpwl := "" // empty = legalization failure (missing point)
				if leg.Feasible {
					hpwl = fmt.Sprintf("%.0f", leg.HPWL)
				}
				fmt.Fprintf(w, "%s,%s,%g,%s,%v,%v\n", bench, v.name, alpha, hpwl, res.RankOK, leg.Feasible)
			}
		}
	}
	return nil
}

func fig4MaxIter(mode Mode) int {
	if mode.Quick {
		return 6
	}
	return 15
}

// Fig5a regenerates the convergence study: the squared-distance objective
// ⟨B⁰, G⟩ per convex iteration for several fixed α. Larger α converges
// faster but can settle on a worse objective (the paper's observation).
func Fig5a(w io.Writer, mode Mode) error {
	fmt.Fprintln(w, "# Fig.5(a) — objective vs convex iteration for fixed alpha")
	fmt.Fprintln(w, "benchmark,alpha,iter,objective,wz")
	benches := []string{"n10"}
	if !mode.Quick {
		benches = append(benches, "n30")
	}
	if mode.Full {
		benches = append(benches, "n50", "n100")
	}
	alphas := []float64{4, 64, 1024}
	if mode.Quick {
		alphas = []float64{4, 1024}
	}
	for _, bench := range benches {
		d, err := gsrc.Builtin(bench, 1, 0.15)
		if err != nil {
			return err
		}
		for _, alpha := range alphas {
			opt := core.Options{
				Alpha0:            alpha,
				AlphaMaxDoublings: 1,
				MaxIter:           fig5aIters(mode),
				Epsilon:           1e-9, // record the full trajectory
				Outline:           &d.Outline,
				LazyConstraints:   true,
				NonSquare:         true,
			}
			res, err := core.Solve(d.Netlist, opt)
			if err != nil {
				return err
			}
			for _, h := range res.History {
				fmt.Fprintf(w, "%s,%g,%d,%.1f,%.4g\n", bench, alpha, h.Iter, h.Objective, h.WZ)
			}
		}
	}
	return nil
}

func fig5aIters(mode Mode) int {
	if mode.Quick {
		return 4
	}
	return 12
}

// Fig5b regenerates the runtime-scaling study: wall time of one sub-problem-1
// solve (one convex iteration) with the full O(n²) constraint set, for
// growing module counts, with a reference power law fitted to the
// measurements. The paper reports ≈n⁴ growth for MOSEK; our dense
// interior-point Schur complement grows faster (the m³ Cholesky over
// m = O(n²) constraints dominates sooner), which the fitted exponent shows.
func Fig5b(w io.Writer, mode Mode) error {
	fmt.Fprintln(w, "# Fig.5(b) — runtime per convex iteration vs module count (full constraint set)")
	fmt.Fprintln(w, "n,seconds")
	var ns []int
	switch {
	case mode.Quick:
		ns = []int{8, 12, 16}
	case mode.Full:
		ns = []int{10, 20, 30, 40, 50, 70, 100}
	default:
		ns = []int{10, 20, 30, 40}
	}
	var logN, logT []float64
	for _, n := range ns {
		spec := gsrc.Spec{Name: fmt.Sprintf("scale%d", n), Modules: n, Nets: 10 * n, Pads: 4 * n, Seed: int64(n)}
		d, err := gsrc.Generate(spec, 1, 0.15)
		if err != nil {
			return err
		}
		opt := core.Options{
			Alpha0:            8,
			AlphaMaxDoublings: 1,
			MaxIter:           1, // exactly one convex iteration
			Outline:           &d.Outline,
		}
		start := time.Now()
		if _, err := core.Solve(d.Netlist, opt); err != nil {
			return err
		}
		sec := time.Since(start).Seconds()
		fmt.Fprintf(w, "%d,%.3f\n", n, sec)
		logN = append(logN, math.Log(float64(n)))
		logT = append(logT, math.Log(sec))
	}
	slope := fitSlope(logN, logT)
	fmt.Fprintf(w, "# fitted runtime exponent: t ~ n^%.2f (paper's MOSEK reference: ~n^4)\n", slope)
	return nil
}

// fitSlope returns the least-squares slope of y on x.
func fitSlope(x, y []float64) float64 {
	n := float64(len(x))
	if n < 2 {
		return 0
	}
	var sx, sy, sxx, sxy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		sxy += x[i] * y[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0
	}
	return (n*sxy - sx*sy) / den
}
