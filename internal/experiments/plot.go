package experiments

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"sdpfloor/internal/svg"
)

// PlotCSV renders a figure experiment's CSV output as SVG line charts
// (fig4, fig5a, fig5b; other ids and tables are a no-op). Charts are
// written into outDir next to the CSV.
func PlotCSV(id, csvPath, outDir string) error {
	rows, err := readCSVRows(csvPath)
	if err != nil {
		return err
	}
	switch id {
	case "fig4":
		return plotFig4(rows, outDir)
	case "fig5a":
		return plotFig5a(rows, outDir)
	case "fig5b":
		return plotFig5b(rows, csvPath, outDir)
	default:
		return nil
	}
}

// readCSVRows returns the non-comment, non-header rows as string fields.
func readCSVRows(path string) ([][]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rows [][]string
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, ",")
		if _, err := strconv.ParseFloat(fields[len(fields)-1], 64); err != nil {
			// Header or boolean-tailed row — keep rows whose numeric columns
			// parse later; headers are filtered by the per-figure parsers.
			if fields[len(fields)-1] != "true" && fields[len(fields)-1] != "false" {
				continue
			}
		}
		rows = append(rows, fields)
	}
	return rows, nil
}

func plotFig4(rows [][]string, outDir string) error {
	// benchmark,variant,alpha,hpwl,rank_ok,feasible → chart per benchmark.
	type key struct{ bench, variant string }
	series := map[key]*svg.Series{}
	benches := map[string]bool{}
	for _, f := range rows {
		if len(f) < 6 || f[3] == "" {
			continue // legalization failure: missing point, as in the paper
		}
		alpha, err1 := strconv.ParseFloat(f[2], 64)
		hpwl, err2 := strconv.ParseFloat(f[3], 64)
		if err1 != nil || err2 != nil {
			continue
		}
		k := key{f[0], f[1]}
		if series[k] == nil {
			series[k] = &svg.Series{Label: f[1]}
		}
		series[k].X = append(series[k].X, log2(alpha))
		series[k].Y = append(series[k].Y, hpwl)
		benches[f[0]] = true
	}
	for bench := range benches {
		var ss []svg.Series
		for _, variant := range []string{"basic", "+nonsquare", "+manhattan", "+hyperedge"} {
			if s := series[key{bench, variant}]; s != nil {
				ss = append(ss, *s)
			}
		}
		if err := writeChart(filepath.Join(outDir, "fig4-"+bench+".svg"),
			"Fig.4 "+bench+": alpha vs legalized HPWL", "log2(alpha)", "HPWL", ss); err != nil {
			return err
		}
	}
	return nil
}

func plotFig5a(rows [][]string, outDir string) error {
	// benchmark,alpha,iter,objective,wz → chart per benchmark, series per α.
	type key struct{ bench, alpha string }
	series := map[key]*svg.Series{}
	benches := map[string]bool{}
	var order []key
	for _, f := range rows {
		if len(f) < 5 {
			continue
		}
		iter, err1 := strconv.ParseFloat(f[2], 64)
		obj, err2 := strconv.ParseFloat(f[3], 64)
		if err1 != nil || err2 != nil {
			continue
		}
		k := key{f[0], f[1]}
		if series[k] == nil {
			series[k] = &svg.Series{Label: "alpha=" + f[1]}
			order = append(order, k)
		}
		series[k].X = append(series[k].X, iter)
		series[k].Y = append(series[k].Y, obj)
		benches[f[0]] = true
	}
	for bench := range benches {
		var ss []svg.Series
		for _, k := range order {
			if k.bench == bench {
				ss = append(ss, *series[k])
			}
		}
		if err := writeChart(filepath.Join(outDir, "fig5a-"+bench+".svg"),
			"Fig.5(a) "+bench+": objective vs iteration", "iteration", "objective", ss); err != nil {
			return err
		}
	}
	return nil
}

func plotFig5b(rows [][]string, csvPath, outDir string) error {
	s := svg.Series{Label: "measured"}
	for _, f := range rows {
		if len(f) != 2 {
			continue
		}
		n, err1 := strconv.ParseFloat(f[0], 64)
		sec, err2 := strconv.ParseFloat(f[1], 64)
		if err1 != nil || err2 != nil || sec <= 0 {
			continue
		}
		s.X = append(s.X, log2(n))
		s.Y = append(s.Y, log2(sec))
	}
	if len(s.X) == 0 {
		return fmt.Errorf("no fig5b rows in %s", csvPath)
	}
	// n⁴ reference through the first point (the paper's dashed line).
	ref := svg.Series{Label: "n^4 reference"}
	for i := range s.X {
		ref.X = append(ref.X, s.X[i])
		ref.Y = append(ref.Y, s.Y[0]+4*(s.X[i]-s.X[0]))
	}
	return writeChart(filepath.Join(outDir, "fig5b.svg"),
		"Fig.5(b) runtime per iteration vs n (log-log)", "log2(n)", "log2(seconds)",
		[]svg.Series{s, ref})
}

func writeChart(path, title, xl, yl string, ss []svg.Series) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := svg.LineChart(f, title, xl, yl, ss); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	return nil
}

func log2(v float64) float64 {
	if v <= 0 {
		return 0
	}
	return math.Log2(v)
}
