// Package experiments regenerates every table and figure of the paper's
// evaluation section (see DESIGN.md §4 for the per-experiment index). Each
// experiment prints the same rows/series the paper reports — as aligned text
// plus CSV — and returns its data so the bench harness and the SVG plotter
// can reuse it. Absolute numbers differ from the paper (synthetic
// benchmarks, pure-Go solvers); the comparisons and trends are the
// reproduction target.
package experiments

import (
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// Mode selects the experiment scale.
type Mode struct {
	// Full enables the paper's large configurations (n100/n200, long α
	// sweeps) — hours of compute, like the original (2.5 h for one n200
	// run on the authors' 64-core server). The default fast mode covers
	// n10–n50 and ami33/ami49 in minutes.
	Full bool
	// Quick shrinks everything to smoke-test size (used by `go test`).
	Quick bool
}

// ModeFromEnv reads SDPFLOOR_FULL=1 to enable full mode.
func ModeFromEnv() Mode {
	return Mode{Full: os.Getenv("SDPFLOOR_FULL") == "1"}
}

// Runner is one experiment: it writes its rows to w.
type Runner func(w io.Writer, mode Mode) error

// Registry maps experiment ids (fig1, table2, …) to runners.
var Registry = map[string]Runner{
	"fig1":      Fig1,
	"fig2":      Fig2,
	"fig3":      Fig3,
	"fig4":      Fig4,
	"fig5a":     Fig5a,
	"fig5b":     Fig5b,
	"table1":    Table1,
	"table2":    Table2,
	"table3":    Table3,
	"ablations": Ablations,
}

// IDs lists the experiment ids in paper order.
func IDs() []string {
	ids := make([]string, 0, len(Registry))
	for id := range Registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Run executes one experiment by id.
func Run(id string, w io.Writer, mode Mode) error {
	r, ok := Registry[id]
	if !ok {
		return fmt.Errorf("experiments: unknown id %q (have %s)", id, strings.Join(IDs(), ", "))
	}
	return r(w, mode)
}

// pct returns the paper's Δ(%) column: how much worse `other` is than `ours`.
func pct(ours, other float64) float64 {
	if ours == 0 {
		return 0
	}
	return (other - ours) / ours * 100
}
