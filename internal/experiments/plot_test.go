package experiments

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeTemp(t *testing.T, dir, name, content string) string {
	t.Helper()
	p := filepath.Join(dir, name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPlotCSVFig4(t *testing.T) {
	dir := t.TempDir()
	csv := `# Fig.4
benchmark,variant,alpha,hpwl,rank_ok,feasible
n10,basic,2,3600,true,true
n10,basic,8,3500,true,true
n10,+nonsquare,2,3450,true,true
n10,+nonsquare,8,,true,false
`
	p := writeTemp(t, dir, "fig4.csv", csv)
	if err := PlotCSV("fig4", p, dir); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig4-n10.svg"))
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	if !strings.Contains(s, "<polyline") || !strings.Contains(s, ">basic</text>") {
		t.Fatalf("fig4 chart incomplete:\n%s", s[:200])
	}
	// The failed cell must be a missing point: +nonsquare has one point.
	if strings.Count(s, "<polyline") != 2 {
		t.Fatalf("expected 2 series, got %d", strings.Count(s, "<polyline"))
	}
}

func TestPlotCSVFig5a(t *testing.T) {
	dir := t.TempDir()
	csv := `benchmark,alpha,iter,objective,wz
n10,4,1,100,5
n10,4,2,90,4
n10,1024,1,100,3
n10,1024,2,120,1
`
	p := writeTemp(t, dir, "fig5a.csv", csv)
	if err := PlotCSV("fig5a", p, dir); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig5a-n10.svg"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "alpha=1024") {
		t.Fatal("legend missing alpha series")
	}
}

func TestPlotCSVFig5b(t *testing.T) {
	dir := t.TempDir()
	csv := "n,seconds\n10,0.01\n20,0.2\n30,1.1\n"
	p := writeTemp(t, dir, "fig5b.csv", csv)
	if err := PlotCSV("fig5b", p, dir); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig5b.svg"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "n^4 reference") {
		t.Fatal("reference line missing")
	}
}

func TestPlotCSVTableNoOp(t *testing.T) {
	dir := t.TempDir()
	p := writeTemp(t, dir, "table2.csv", "a,b\n1,2\n")
	if err := PlotCSV("table2", p, dir); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("table plot should be a no-op; dir has %d entries", len(entries))
	}
}

func TestPlotCSVMissingFile(t *testing.T) {
	if err := PlotCSV("fig4", "/does/not/exist.csv", t.TempDir()); err == nil {
		t.Fatal("expected error for missing CSV")
	}
}
