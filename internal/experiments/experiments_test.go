package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// quick runs every experiment in smoke-test mode and returns its output.
func runQuick(t *testing.T, id string) string {
	t.Helper()
	var b strings.Builder
	if err := Run(id, &b, Mode{Quick: true}); err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	return b.String()
}

func TestFig1Output(t *testing.T) {
	out := runQuick(t, "fig1")
	if !strings.Contains(out, "AR slice convex: true") {
		t.Fatalf("AR convexity claim not reproduced:\n%s", tail(out))
	}
	if !strings.Contains(out, "PP slice convex: false") {
		t.Fatalf("PP non-convexity claim not reproduced:\n%s", tail(out))
	}
}

func TestFig2Output(t *testing.T) {
	out := runQuick(t, "fig2")
	lines := dataLines(out)
	if len(lines) < 5 {
		t.Fatalf("too few rows:\n%s", out)
	}
	// AR optimal distance must shrink as A_ij grows (the Fig. 2b pathology).
	first := fields(lines[0])
	last := fields(lines[len(lines)-1])
	if !(first[1] > last[1]) {
		t.Fatalf("AR distance should shrink with A_ij: first %g last %g", first[1], last[1])
	}
	// Weak connections push AR/PP circles far beyond tangency (> 1).
	if first[1] < 1.2 || first[2] < 1.2 {
		t.Fatalf("weak-A AR/PP optima should exceed tangency: %v", first)
	}
	// Our distance ratio stays at the constraint (1.0) for every weight.
	for _, l := range lines {
		f := fields(l)
		if f[3] < 0.95 || f[3] > 1.2 {
			t.Fatalf("SDP distance ratio drifted: %v", f)
		}
	}
}

func TestFig3Output(t *testing.T) {
	out := runQuick(t, "fig3")
	lines := dataLines(out)
	// k=1 rows must give the basic bound 2·r = 2·√(s/4) = 2 for s=4.
	found := false
	for _, l := range lines {
		f := fields(l)
		if f[0] == 1 {
			found = true
			if f[3] < 1.99 || f[3] > 2.01 {
				t.Fatalf("k=1 bound %g, want 2", f[3])
			}
		}
	}
	if !found {
		t.Fatal("no k=1 rows")
	}
}

func TestTable1Output(t *testing.T) {
	out := runQuick(t, "table1")
	for _, want := range []string{"collapsed=true", "non-convex", "controllable"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestFig4Output(t *testing.T) {
	out := runQuick(t, "fig4")
	lines := dataLines(out)
	// quick mode: 1 benchmark × 4 variants × 2 alphas.
	if len(lines) != 8 {
		t.Fatalf("expected 8 rows, got %d:\n%s", len(lines), out)
	}
	feasibleRows := 0
	for _, l := range lines {
		if strings.HasSuffix(l, "true") {
			feasibleRows++
		}
	}
	if feasibleRows == 0 {
		t.Fatal("every Fig.4 cell failed legalization")
	}
}

func TestFig5aOutput(t *testing.T) {
	out := runQuick(t, "fig5a")
	lines := dataLines(out)
	if len(lines) < 4 {
		t.Fatalf("too few convergence rows:\n%s", out)
	}
}

func TestFig5bOutput(t *testing.T) {
	out := runQuick(t, "fig5b")
	if !strings.Contains(out, "fitted runtime exponent") {
		t.Fatalf("missing fit:\n%s", out)
	}
	lines := dataLines(out)
	// Runtime must grow with n.
	first := fields(lines[0])
	last := fields(lines[len(lines)-1])
	if last[1] <= first[1] {
		t.Fatalf("runtime did not grow: %v → %v", first, last)
	}
}

func TestTable2Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("table2 takes ~20s even in quick mode")
	}
	out := runQuick(t, "table2")
	if !strings.Contains(out, "average delta") {
		t.Fatalf("missing summary:\n%s", out)
	}
	if len(dataLines(out)) != 2 { // n10 at both aspects
		t.Fatalf("expected 2 rows:\n%s", out)
	}
}

func TestTable3Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("table3 takes ~30s even in quick mode")
	}
	out := runQuick(t, "table3")
	if !strings.Contains(out, "average delta") {
		t.Fatalf("missing summary:\n%s", out)
	}
	if len(dataLines(out)) != 2 { // ami33 at both aspects
		t.Fatalf("expected 2 rows:\n%s", out)
	}
}

func TestRunUnknownID(t *testing.T) {
	var b strings.Builder
	if err := Run("nope", &b, Mode{}); err == nil {
		t.Fatal("expected unknown-id error")
	}
}

func TestIDsSortedComplete(t *testing.T) {
	ids := IDs()
	if len(ids) != len(Registry) {
		t.Fatal("IDs incomplete")
	}
	for i := 1; i < len(ids); i++ {
		if ids[i] < ids[i-1] {
			t.Fatal("IDs not sorted")
		}
	}
}

func TestFitSlope(t *testing.T) {
	// y = 3x + 1.
	got := fitSlope([]float64{0, 1, 2, 3}, []float64{1, 4, 7, 10})
	if got < 2.999 || got > 3.001 {
		t.Fatalf("slope = %g, want 3", got)
	}
	if fitSlope([]float64{1}, []float64{1}) != 0 {
		t.Fatal("degenerate fit should be 0")
	}
}

func TestPct(t *testing.T) {
	if pct(100, 110) != 10 {
		t.Fatalf("pct = %g", pct(100, 110))
	}
	if pct(0, 5) != 0 {
		t.Fatal("pct(0, x) should be 0")
	}
}

// --- helpers ---

// dataLines returns non-comment, non-header CSV rows (lines whose first
// field parses as a number or aspect tag).
func dataLines(out string) []string {
	var lines []string
	for _, l := range strings.Split(out, "\n") {
		l = strings.TrimSpace(l)
		if l == "" || strings.HasPrefix(l, "#") {
			continue
		}
		first := strings.Split(l, ",")[0]
		if isNumeric(first) || strings.HasPrefix(first, "1:") || isBenchName(first) {
			lines = append(lines, l)
		}
	}
	return lines
}

func isBenchName(s string) bool {
	return strings.HasPrefix(s, "n") || strings.HasPrefix(s, "ami")
}

func isNumeric(s string) bool {
	if s == "" {
		return false
	}
	for _, c := range s {
		if (c < '0' || c > '9') && c != '.' && c != '-' && c != '+' && c != 'e' {
			return false
		}
	}
	return true
}

// fields parses a CSV line into float64s (non-numeric fields become 0).
func fields(l string) []float64 {
	parts := strings.Split(l, ",")
	out := make([]float64, len(parts))
	for i, p := range parts {
		if v, err := strconv.ParseFloat(strings.TrimSpace(p), 64); err == nil {
			out[i] = v
		}
	}
	return out
}

// tail returns the last few lines of s for error messages.
func tail(s string) string {
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) > 6 {
		lines = lines[len(lines)-6:]
	}
	return strings.Join(lines, "\n")
}

func TestAblationsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("ablations take ~10s in quick mode")
	}
	out := runQuick(t, "ablations")
	for _, study := range []string{"constraints,full", "constraints,lazy", "solver,ipm", "solver,admm", "netmodel,clique", "hierarchy,two-level"} {
		if !strings.Contains(out, study) {
			t.Fatalf("missing %q in:\n%s", study, out)
		}
	}
}
