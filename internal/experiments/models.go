package experiments

import (
	"fmt"
	"io"
	"math"

	"sdpfloor/internal/baseline"
	"sdpfloor/internal/core"
	"sdpfloor/internal/geom"
	"sdpfloor/internal/linalg"
	"sdpfloor/internal/netlist"
)

// twoModuleNL builds the two-module instance used by the model studies
// (Figs. 1–2, Table I): unit parameters as in the paper's plots.
func twoModuleNL(weight float64) *netlist.Netlist {
	return &netlist.Netlist{
		Modules: []netlist.Module{
			{Name: "p_i", MinArea: math.Pi, MaxAspect: 1}, // radius 1 under r=√(s/π)
			{Name: "p_j", MinArea: math.Pi, MaxAspect: 1},
		},
		Nets: []netlist.Net{{Name: "n", Weight: weight, Modules: []int{0, 1}}},
	}
}

// Fig1 reproduces the xᵢ → f_ij slices of the AR model (convex, Fig. 1a)
// and the PP model (non-convex, Fig. 1b) with all other variables and
// parameters set to 1, and verifies the convexity claims numerically along
// the slice.
func Fig1(w io.Writer, mode Mode) error {
	fmt.Fprintln(w, "# Fig.1 — model slices f_ij(x_i), all other variables = 1")
	fmt.Fprintln(w, "# AR (full Eq.3, piecewise): d = squared distance; the constant branch below")
	fmt.Fprintln(w, "#   T_ij is what makes the slice convex")
	fmt.Fprintln(w, "# PP (Eq.4): d = Euclidean distance; non-convex across x_i = x_j")
	fmt.Fprintln(w, "x_i,f_AR,f_PP")
	var arVals, ppVals []float64
	xs := sampleRange(-3, 5, 81)
	for _, x := range xs {
		// Other module fixed at (1, 1); ours at (x, 1) — the paper's slice.
		dsq := (x - 1) * (x - 1)
		a := baseline.ARPairValue(1, 1, dsq)
		p := baseline.PPPairValue(1, 1, 1, math.Abs(x-1))
		arVals = append(arVals, a)
		ppVals = append(ppVals, p)
		fmt.Fprintf(w, "%.4f,%.6f,%.6f\n", x, a, p)
	}
	fmt.Fprintf(w, "# AR slice convex: %v (paper: yes)\n", isConvexSeries(xs, arVals))
	fmt.Fprintf(w, "# PP slice convex: %v (paper: no — convex only on each side of x_j)\n",
		isConvexSeries(xs, ppVals))
	return nil
}

// Fig2 reproduces the optimum-distance study: for the AR and PP models the
// stationary distance between two circles depends on A_ij — small A_ij
// pushes the circles far apart (Fig. 2b), while our distance constraint
// keeps the optimum at tangency regardless of A_ij (Fig. 2a).
func Fig2(w io.Writer, mode Mode) error {
	fmt.Fprintln(w, "# Fig.2 — optimal center distance vs connection weight A_ij,")
	fmt.Fprintln(w, "# normalized by each model's own tangency distance (1.0 = circles tangent,")
	fmt.Fprintln(w, "# the desired optimum of Fig. 2a)")
	fmt.Fprintln(w, "A_ij,AR_ratio,PP_ratio,SDP_ratio")
	weights := []float64{0.05, 0.1, 0.25, 0.5, 1, 2, 4, 8, 16}
	for _, a := range weights {
		nl := twoModuleNL(a)
		radii := baseline.Radii(nl) // AR/PP convention: r = √(s/π) = 1 here
		sum := radii[0] + radii[1]
		// AR stationary point: d_sq* = sqrt(t/A) with t = σ(r_i+r_j)².
		arD := math.Sqrt(math.Sqrt(sum * sum / a))
		// PP stationary point: d* = max(kink, sqrt(sum/A)) — see Eq. 4.
		ppD := math.Max(sum, math.Sqrt(sum/a))
		// Our model: the distance constraint holds with equality whenever
		// the attraction is active: D_ij = (r_i+r_j)², independent of A_ij.
		// The SDP radius convention is r = √(s/4), so normalize by its own
		// tangency distance.
		sdpTangent := 2 * math.Sqrt(nl.Modules[0].MinArea/4)
		sdpD := sdpPairDistance(nl)
		fmt.Fprintf(w, "%.2f,%.4f,%.4f,%.4f\n", a, arD/sum, ppD/sum, sdpD/sdpTangent)
	}
	fmt.Fprintln(w, "# AR/PP optima drift with A_ij; the SDP distance stays at the constraint (ratio 1)")
	return nil
}

// sdpPairDistance solves the two-module SDP and returns the model's center
// distance √D₀₁ read from the G block — the quantity the distance
// constraint controls (equal to the 2-D center distance once rank 2 is
// reached).
func sdpPairDistance(nl *netlist.Netlist) float64 {
	// Anchor with two pads so the layout is translation-determined.
	nl.Pads = []netlist.Pad{
		{Name: "pl", Pos: geom.Point{X: -4, Y: 0}},
		{Name: "pr", Pos: geom.Point{X: 4, Y: 0}},
	}
	nl.Nets = append(nl.Nets,
		netlist.Net{Name: "al", Weight: 0.05, Modules: []int{0}, Pads: []int{0}},
		netlist.Net{Name: "ar", Weight: 0.05, Modules: []int{1}, Pads: []int{1}},
	)
	res, err := core.Solve(nl, core.Options{MaxIter: 15})
	if err != nil {
		return math.NaN()
	}
	d01 := res.Z.At(2, 2) + res.Z.At(3, 3) - 2*res.Z.At(2, 3)
	return math.Sqrt(math.Max(d01, 0))
}

// Fig3 tabulates the adaptive distance constraint geometry of Eqs. 25–26:
// the forbidden-zone bound as a function of the aspect bound k and the
// connection strength blend k_ij.
func Fig3(w io.Writer, mode Mode) error {
	fmt.Fprintln(w, "# Fig.3 — adaptive distance constraint (Eqs. 25-26)")
	fmt.Fprintln(w, "# two modules, s_i = s_j = 4; radii inflated to sqrt(k*s/4)")
	fmt.Fprintln(w, "k,A_frac,k_ij,bound_dist")
	for _, k := range []float64{1, 2, 3} {
		for _, frac := range []float64{0, 0.25, 0.5, 1} {
			// A_frac = A_ij / Σ_l A_il.
			a := linalg.NewDense(2, 2)
			a.Set(0, 1, frac)
			a.Set(1, 0, frac)
			deg := []float64{1, 1} // normalize so A_ij/deg = frac
			radii := []float64{math.Sqrt(k * 4 / 4), math.Sqrt(k * 4 / 4)}
			aspect := []float64{k, k}
			b := distanceBoundForTest(0, 1, radii, aspect, a, deg)
			kij := frac*(k-1) + 1
			fmt.Fprintf(w, "%.0f,%.2f,%.3f,%.4f\n", k, frac, kij, math.Sqrt(b))
		}
	}
	fmt.Fprintln(w, "# k=1 reduces to the basic constraint (Eq. 11); larger A_frac admits closer packing")
	return nil
}

// distanceBoundForTest re-exposes core's Eq. 26 computation via the public
// surface available to this package (duplicated formula kept in sync by the
// core package's own unit tests).
func distanceBoundForTest(i, j int, radii, aspect []float64, a *linalg.Dense, deg []float64) float64 {
	kij := a.At(i, j)/deg[i]*(aspect[i]-1) + 1
	kji := a.At(j, i)/deg[j]*(aspect[j]-1) + 1
	b1 := radii[j] - radii[i] + 2*radii[i]/kij
	b2 := radii[i] - radii[j] + 2*radii[j]/kji
	return math.Max(b1*b1, b2*b2)
}

// Table1 demonstrates the qualitative comparison of Table I numerically:
// QP and AR collapse to trivial optima without anchors, PP is non-convex,
// and the SDP model controls the pairwise distance directly.
func Table1(w io.Writer, mode Mode) error {
	fmt.Fprintln(w, "# Table I — numeric demonstrations of the qualitative comparison")

	// QP without pads: the global optimum is all modules coincident.
	nl := chain(4)
	qp, err := baseline.SolveQP(nl)
	if err != nil {
		return err
	}
	maxD := 0.0
	for i := range qp.Centers {
		for j := i + 1; j < len(qp.Centers); j++ {
			maxD = math.Max(maxD, qp.Centers[i].Dist(qp.Centers[j]))
		}
	}
	fmt.Fprintf(w, "QP trivial optimum: max pairwise distance %.2e (collapsed=%v; paper: trivial)\n",
		maxD, maxD < 1e-6)

	// AR without the line-search safeguard: the convex model's global
	// optimum is also collapse (f → −n as d → 0 only in the truncated
	// branch; with the practical branch the stationary distance shrinks
	// with growing A_ij).
	nlHeavy := twoModuleNL(100)
	arRes, err := baseline.SolveAR(nlHeavy, baseline.AROptions{Seed: 1})
	if err != nil {
		return err
	}
	dHeavy := arRes.Centers[0].Dist(arRes.Centers[1])
	fmt.Fprintf(w, "AR area control: optimum distance %.3f for A=100 (< tangency 2; paper: partial control)\n", dHeavy)

	// PP non-convexity: midpoint test along the Fig. 1b slice.
	nl2 := twoModuleNL(1)
	pp := baseline.PPObjective(nl2)
	g := make([]float64, 4)
	f := func(x float64) float64 { return pp([]float64{x, 1, 1, 1}, g) }
	a, b, m := f(0.0), f(2.0), f(1.0+1e-9)
	fmt.Fprintf(w, "PP convexity: f(0)=%.3f f(2)=%.3f f(mid)=%.3f — midpoint above chord: %v (paper: non-convex)\n",
		a, b, m, m > (a+b)/2)

	// Our controllable constraint: solved distance equals the bound.
	nlSDP := twoModuleNL(8)
	bound := 2 * math.Sqrt(nlSDP.Modules[0].MinArea/4) // r_i + r_j with r = √(s/4)
	d := sdpPairDistance(nlSDP)
	fmt.Fprintf(w, "SDP distance control: solved distance %.4f vs constraint %.4f (paper: controllable)\n", d, bound)
	fmt.Fprintln(w, "#")
	fmt.Fprintln(w, "# method  convex  non-trivial-opt  area-constraint")
	fmt.Fprintln(w, "# QP      yes     no (collapses)   none")
	fmt.Fprintln(w, "# AR      yes     no (collapses)   partial (drifts with A_ij)")
	fmt.Fprintln(w, "# PP      no      yes              partial (drifts with A_ij)")
	fmt.Fprintln(w, "# ours    yes     yes              controllable (hard constraint)")
	return nil
}

func chain(n int) *netlist.Netlist {
	nl := &netlist.Netlist{}
	for i := 0; i < n; i++ {
		nl.Modules = append(nl.Modules, netlist.Module{Name: fmt.Sprintf("m%d", i), MinArea: 1, MaxAspect: 3})
	}
	for i := 0; i+1 < n; i++ {
		nl.Nets = append(nl.Nets, netlist.Net{Name: fmt.Sprintf("e%d", i), Weight: 1, Modules: []int{i, i + 1}})
	}
	return nl
}

func sampleRange(lo, hi float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = lo + (hi-lo)*float64(i)/float64(n-1)
	}
	return out
}

// isConvexSeries checks discrete convexity (second differences ≥ −tol).
func isConvexSeries(xs, ys []float64) bool {
	for i := 1; i+1 < len(ys); i++ {
		h1 := xs[i] - xs[i-1]
		h2 := xs[i+1] - xs[i]
		second := (ys[i+1]-ys[i])/h2 - (ys[i]-ys[i-1])/h1
		if second < -1e-6*(1+math.Abs(ys[i])) {
			return false
		}
	}
	return true
}
