package experiments

import (
	"fmt"
	"io"

	"sdpfloor/internal/analytic"
	"sdpfloor/internal/anneal"
	"sdpfloor/internal/baseline"
	"sdpfloor/internal/core"
	"sdpfloor/internal/geom"
	"sdpfloor/internal/gsrc"
	"sdpfloor/internal/legalize"
)

// Table2Benchmarks lists the benchmark names by mode.
func Table2Benchmarks(mode Mode) []string {
	switch {
	case mode.Quick:
		return []string{"n10"}
	case mode.Full:
		return []string{"n10", "n30", "n50", "n100", "n200"}
	default:
		return []string{"n10", "n30", "n50"}
	}
}

// Table2 regenerates the HPWL comparison of Ours vs AR [1] vs PP [9] on the
// GSRC suite at outline aspect ratios 1:1 and 1:2, with I/O pads fixed on
// the chip boundary and the shared legalizer (the paper's setup).
func Table2(w io.Writer, mode Mode) error {
	fmt.Fprintln(w, "# Table II — HPWL: Ours vs AR vs PP (shared legalization, pads on boundary)")
	fmt.Fprintln(w, "# *_ok = legalization fit the outline")
	fmt.Fprintln(w, "aspect,benchmark,blocks,nets,ours,ar,ar_delta_pct,pp,pp_delta_pct,ours_ok,ar_ok,pp_ok")
	for _, aspect := range []float64{1, 2} {
		var sumAR, sumPP float64
		var rows int
		for _, bench := range Table2Benchmarks(mode) {
			d, err := gsrc.Builtin(bench, aspect, 0.15)
			if err != nil {
				return err
			}
			ours, oursOK, err := runOursLegalized(d, mode)
			if err != nil {
				return err
			}
			arRes, err := baseline.SolveAR(d.Netlist, baseline.AROptions{Seed: 1, Starts: arppStarts(mode)})
			if err != nil {
				return err
			}
			arHPWL, arOK := legalizedHPWL(d, arRes.Centers)
			ppRes, err := baseline.SolvePP(d.Netlist, baseline.PPOptions{Seed: 1, Starts: arppStarts(mode)})
			if err != nil {
				return err
			}
			ppHPWL, ppOK := legalizedHPWL(d, ppRes.Centers)
			dAR, dPP := pct(ours, arHPWL), pct(ours, ppHPWL)
			sumAR += dAR
			sumPP += dPP
			rows++
			fmt.Fprintf(w, "1:%g,%s,%d,%d,%.0f,%.0f,%.2f,%.0f,%.2f,%v,%v,%v\n",
				aspect, bench, d.Netlist.N(), len(d.Netlist.Nets), ours, arHPWL, dAR, ppHPWL, dPP,
				oursOK, arOK, ppOK)
		}
		if rows > 0 {
			fmt.Fprintf(w, "# aspect 1:%g average delta: AR %.2f%%, PP %.2f%% (paper: AR 14.71/14.59%%, PP 15.58/20.10%%)\n",
				aspect, sumAR/float64(rows), sumPP/float64(rows))
		}
	}
	return nil
}

// Table3Benchmarks lists the Table III benchmarks by mode.
func Table3Benchmarks(mode Mode) []string {
	switch {
	case mode.Quick:
		return []string{"ami33"}
	case mode.Full:
		return []string{"ami33", "ami49", "n100", "n200"}
	default:
		return []string{"ami33", "ami49"}
	}
}

// Table3 regenerates the HPWL comparison of Ours vs Parquet-4 (sequence-pair
// simulated annealing) vs the analytical density-driven method, at both
// aspect ratios; the analytical baseline is post-processed with pl2sp +
// sequence-pair refinement, matching the paper's footnote.
func Table3(w io.Writer, mode Mode) error {
	fmt.Fprintln(w, "# Table III — HPWL: Ours vs Parquet-4(SA) vs Analytical(+pl2sp)")
	fmt.Fprintln(w, "aspect,benchmark,ours,parquet,parquet_delta_pct,analytic,analytic_delta_pct")
	for _, aspect := range []float64{1, 2} {
		var sumSA, sumAn float64
		var rows int
		for _, bench := range Table3Benchmarks(mode) {
			d, err := gsrc.Builtin(bench, aspect, 0.15)
			if err != nil {
				return err
			}
			ours, _, err := runOursLegalized(d, mode)
			if err != nil {
				return err
			}
			sa, err := anneal.Solve(d.Netlist, anneal.Options{
				Outline: d.Outline, Seed: 7,
				MovesPerTemp: saMoves(mode, d.Netlist.N()),
				CoolingRate:  saCooling(mode),
			})
			if err != nil {
				return err
			}
			an, err := analytic.Solve(d.Netlist, analytic.Options{Outline: d.Outline, Seed: 7})
			if err != nil {
				return err
			}
			anHPWL, err := pl2spHPWL(d, an.Centers, mode)
			if err != nil {
				return err
			}
			dSA, dAn := pct(ours, sa.HPWL), pct(ours, anHPWL)
			sumSA += dSA
			sumAn += dAn
			rows++
			fmt.Fprintf(w, "1:%g,%s,%.0f,%.0f,%.2f,%.0f,%.2f\n",
				aspect, bench, ours, sa.HPWL, dSA, anHPWL, dAn)
		}
		if rows > 0 {
			fmt.Fprintf(w, "# aspect 1:%g average delta: Parquet %.2f%%, Analytical %.2f%% (paper: 16.89/18.23%%, 3.02/4.56%%)\n",
				aspect, sumSA/float64(rows), sumAn/float64(rows))
		}
	}
	return nil
}

// runOursLegalized runs the SDP floorplanner with all enhancements and the
// shared legalizer, returning the legalized HPWL and feasibility.
func runOursLegalized(d *gsrc.Design, mode Mode) (float64, bool, error) {
	opt := core.Options{
		Outline:         &d.Outline,
		LazyConstraints: true,
	}.WithAllEnhancements()
	if mode.Quick {
		opt.MaxIter = 5
		opt.AlphaMaxDoublings = 3
	} else if !mode.Full {
		opt.MaxIter = 12
		opt.AlphaMaxDoublings = 8
	}
	res, err := core.Solve(d.Netlist, opt)
	if err != nil {
		return 0, false, err
	}
	hpwl, ok := legalizedHPWL(d, res.Centers)
	return hpwl, ok, nil
}

// legalizedHPWL runs the shared legalizer and returns the final HPWL and
// whether the result fit the outline (an infeasible packing is still scored,
// matching how a failing flow would be judged).
func legalizedHPWL(d *gsrc.Design, centers []geom.Point) (float64, bool) {
	leg, err := legalize.Legalize(d.Netlist, centers, legalize.Options{Outline: d.Outline})
	if err != nil {
		return 0, false
	}
	return leg.HPWL, leg.Feasible
}

// pl2spHPWL post-processes a placement with pl2sp + short sequence-pair
// refinement (Table III's treatment of the analytical baseline).
func pl2spHPWL(d *gsrc.Design, centers []geom.Point, mode Mode) (float64, error) {
	sp := anneal.FromPlacement(centers)
	res, err := anneal.Solve(d.Netlist, anneal.Options{
		Outline: d.Outline, Seed: 5, Init: &sp,
		T0Scale:      0.05, // refinement only: keep the analytical structure
		MovesPerTemp: saMoves(mode, d.Netlist.N()) / 2,
		CoolingRate:  saCooling(mode),
	})
	if err != nil {
		return 0, err
	}
	return res.HPWL, nil
}

func arppStarts(mode Mode) int {
	if mode.Quick {
		return 2
	}
	return 4
}

func saMoves(mode Mode, n int) int {
	switch {
	case mode.Quick:
		return 10 * n
	case mode.Full:
		return 60 * n
	default:
		return 30 * n
	}
}

func saCooling(mode Mode) float64 {
	if mode.Quick {
		return 0.8
	}
	return 0.93
}
