package version

import (
	"runtime/debug"
	"strings"
	"testing"
)

func TestStampNonEmpty(t *testing.T) {
	s := Stamp()
	if s == "" {
		t.Fatal("Stamp returned an empty string")
	}
	if s == Stamp() != true {
		t.Fatal("Stamp is not stable")
	}
}

func TestStampFrom(t *testing.T) {
	if got := stampFrom(nil, false); got != "unknown" {
		t.Errorf("no build info: %q, want unknown", got)
	}
	bi := &debug.BuildInfo{GoVersion: "go1.22.1"}
	bi.Main.Version = "v1.2.3"
	if got := stampFrom(bi, true); got != "v1.2.3 go1.22.1" {
		t.Errorf("released build: %q", got)
	}
	bi.Settings = []debug.BuildSetting{
		{Key: "vcs.revision", Value: "0123abcd4567deadbeef"},
		{Key: "vcs.modified", Value: "true"},
	}
	got := stampFrom(bi, true)
	if !strings.Contains(got, "rev 0123abcd4567+dirty") {
		t.Errorf("vcs build: %q, want truncated dirty revision", got)
	}
	if strings.Contains(got, "deadbeef") {
		t.Errorf("revision not truncated: %q", got)
	}
}
