// Package version derives a build/version stamp from the information the
// Go toolchain embeds in every binary (runtime/debug.ReadBuildInfo), so
// deployments report what they are running without a hand-maintained
// version constant. floorpland exposes the stamp on /healthz and logs it
// at startup; sdpfloor and floorpland print it under -version. Restarted
// or replayed deployments are thereby distinguishable in logs even when
// the binary path is identical.
package version

import (
	"runtime/debug"
	"strings"
	"sync"
)

// stampOnce caches the stamp: build info never changes within a process.
var stampOnce = sync.OnceValue(func() string { return stampFrom(debug.ReadBuildInfo()) })

// Stamp returns a one-line build identifier:
//
//	v1.2.3 go1.22.1                      (released module build)
//	(devel) go1.22.1 rev 0123abcd4567    (VCS build)
//	(devel) go1.22.1 rev 0123abcd4567+dirty
//	unknown                              (stripped binary)
func Stamp() string { return stampOnce() }

func stampFrom(bi *debug.BuildInfo, ok bool) string {
	if !ok || bi == nil {
		return "unknown"
	}
	parts := []string{}
	if v := bi.Main.Version; v != "" {
		parts = append(parts, v)
	}
	if bi.GoVersion != "" {
		parts = append(parts, bi.GoVersion)
	}
	var rev, modified string
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			modified = s.Value
		}
	}
	if rev != "" {
		if len(rev) > 12 {
			rev = rev[:12]
		}
		if modified == "true" {
			rev += "+dirty"
		}
		parts = append(parts, "rev "+rev)
	}
	if len(parts) == 0 {
		return "unknown"
	}
	return strings.Join(parts, " ")
}
