package sdpfloor

// The bench harness regenerates every table and figure of the paper (see
// DESIGN.md §4) plus the ablations of §5. Scale is controlled by the
// SDPFLOOR_BENCH environment variable:
//
//	(unset)              smoke scale  — seconds per bench
//	SDPFLOOR_BENCH=fast  n10–n50 + ami33/ami49 — minutes per table
//	SDPFLOOR_BENCH=full  paper scale (n100/n200) — hours, like the original
//
// Each bench writes the experiment's rows to stdout on the first iteration
// so `go test -bench` output doubles as the reproduction record.

import (
	"fmt"
	"io"
	"math"
	"os"
	"testing"

	"sdpfloor/internal/anneal"
	"sdpfloor/internal/core"
	"sdpfloor/internal/experiments"
	"sdpfloor/internal/legalize"
	"sdpfloor/internal/netlist"
)

func benchMode() experiments.Mode {
	switch os.Getenv("SDPFLOOR_BENCH") {
	case "full":
		return experiments.Mode{Full: true}
	case "fast":
		return experiments.Mode{}
	default:
		return experiments.Mode{Quick: true}
	}
}

// runExperiment executes one experiment per bench iteration, echoing the
// rows once.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	mode := benchMode()
	for i := 0; i < b.N; i++ {
		var w io.Writer = io.Discard
		if i == 0 {
			w = os.Stdout
			fmt.Printf("\n--- %s (quick=%v full=%v) ---\n", id, mode.Quick, mode.Full)
		}
		if err := experiments.Run(id, w, mode); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig1ModelSlices(b *testing.B)        { runExperiment(b, "fig1") }
func BenchmarkFig2OptimalDistance(b *testing.B)    { runExperiment(b, "fig2") }
func BenchmarkFig3AdaptiveConstraint(b *testing.B) { runExperiment(b, "fig3") }
func BenchmarkTable1Properties(b *testing.B)       { runExperiment(b, "table1") }
func BenchmarkFig4AlphaSweep(b *testing.B)         { runExperiment(b, "fig4") }
func BenchmarkFig5aConvergence(b *testing.B)       { runExperiment(b, "fig5a") }
func BenchmarkFig5bRuntimeScaling(b *testing.B)    { runExperiment(b, "fig5b") }
func BenchmarkTable2OursVsARPP(b *testing.B)       { runExperiment(b, "table2") }
func BenchmarkTable3OursVsSAAnalytical(b *testing.B) {
	runExperiment(b, "table3")
}

// --- Ablations (DESIGN.md §5) ---

// benchDesign returns the ablation workload for the current scale.
func benchDesign(b *testing.B) *Design {
	b.Helper()
	name := "n10"
	if !benchMode().Quick {
		name = "n30"
	}
	d, err := LoadBenchmark(name, 1, 0.15)
	if err != nil {
		b.Fatal(err)
	}
	return d
}

// BenchmarkAblationLazyConstraints compares the full O(n²) constraint set
// against the lazy working set: same solution quality, different cost.
func BenchmarkAblationLazyConstraints(b *testing.B) {
	d := benchDesign(b)
	for _, lazy := range []bool{false, true} {
		name := "full"
		if lazy {
			name = "lazy"
		}
		b.Run(name, func(b *testing.B) {
			var obj float64
			for i := 0; i < b.N; i++ {
				res, err := core.Solve(d.Netlist, core.Options{
					MaxIter: 8, AlphaMaxDoublings: 4,
					Outline: &d.Outline, LazyConstraints: lazy,
				})
				if err != nil {
					b.Fatal(err)
				}
				obj = res.Objective
			}
			b.ReportMetric(obj, "objective")
		})
	}
}

// BenchmarkAblationSolver compares the interior-point and ADMM solvers on
// identical sub-problem-1 instances (one convex iteration each).
func BenchmarkAblationSolver(b *testing.B) {
	d := benchDesign(b)
	for _, kind := range []core.SolverKind{core.SolverIPM, core.SolverADMM} {
		b.Run(kind.String(), func(b *testing.B) {
			var obj float64
			for i := 0; i < b.N; i++ {
				res, err := core.Solve(d.Netlist, core.Options{
					MaxIter: 1, AlphaMaxDoublings: 1, Alpha0: 8,
					Outline: &d.Outline, LazyConstraints: true,
					Solver:        kind,
					SolverMaxIter: admmIters(kind),
				})
				if err != nil {
					b.Fatal(err)
				}
				obj = res.Objective
			}
			b.ReportMetric(obj, "objective")
		})
	}
}

func admmIters(kind core.SolverKind) int {
	if kind == core.SolverADMM {
		return 3000
	}
	return 0
}

// BenchmarkAblationNetModel compares the clique objective against the
// Manhattan-adaptive and hyper-edge-adaptive variants (Eq. 20).
func BenchmarkAblationNetModel(b *testing.B) {
	d := benchDesign(b)
	variants := []struct {
		name string
		opt  core.Options
	}{
		{"clique", core.Options{}},
		{"manhattan", core.Options{Manhattan: true}},
		{"hyperedge", core.Options{Manhattan: true, HyperEdge: true}},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			var hpwl float64
			for i := 0; i < b.N; i++ {
				opt := v.opt
				opt.MaxIter = 8
				opt.AlphaMaxDoublings = 4
				opt.Outline = &d.Outline
				opt.LazyConstraints = true
				res, err := core.Solve(d.Netlist, opt)
				if err != nil {
					b.Fatal(err)
				}
				leg, err := legalize.Legalize(d.Netlist, res.Centers, legalize.Options{Outline: d.Outline})
				if err != nil {
					b.Fatal(err)
				}
				hpwl = leg.HPWL
			}
			b.ReportMetric(hpwl, "hpwl")
		})
	}
}

// BenchmarkAblationRankExtraction compares reading X off the Z block
// (Algorithm 1) against the best-rank-2 factorization of G on a pad-free
// instance, where both are valid.
func BenchmarkAblationRankExtraction(b *testing.B) {
	nl := &netlist.Netlist{}
	for i := 0; i < 8; i++ {
		nl.Modules = append(nl.Modules, netlist.Module{
			Name: fmt.Sprintf("m%d", i), MinArea: 1 + float64(i%3), MaxAspect: 3,
		})
	}
	for i := 0; i < 8; i++ {
		nl.Nets = append(nl.Nets, netlist.Net{
			Name: fmt.Sprintf("e%d", i), Weight: 1, Modules: []int{i, (i + 3) % 8},
		})
	}
	res, err := core.Solve(nl, core.Options{MaxIter: 10})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("xblock", func(b *testing.B) {
		var obj float64
		for i := 0; i < b.N; i++ {
			cs := core.ExtractCenters(res.Z)
			obj = pairObjective(nl, cs)
		}
		b.ReportMetric(obj, "sq_objective")
	})
	b.Run("bestrank2", func(b *testing.B) {
		var obj float64
		for i := 0; i < b.N; i++ {
			cs, err := core.ExtractBestRank2(res.Z)
			if err != nil {
				b.Fatal(err)
			}
			obj = pairObjective(nl, cs)
		}
		b.ReportMetric(obj, "sq_objective")
	})
}

func pairObjective(nl *netlist.Netlist, cs []Point) float64 {
	a := nl.Adjacency()
	total := 0.0
	for i := 0; i < nl.N(); i++ {
		for j := 0; j < nl.N(); j++ {
			total += a.At(i, j) * cs[i].DistSq(cs[j])
		}
	}
	return total
}

// BenchmarkPlaceEndToEnd measures the full Place pipeline at bench scale.
func BenchmarkPlaceEndToEnd(b *testing.B) {
	d := benchDesign(b)
	var hpwl float64
	for i := 0; i < b.N; i++ {
		fp, err := Place(d.Netlist, Config{Outline: d.Outline})
		if err != nil {
			b.Fatal(err)
		}
		hpwl = fp.HPWL
	}
	b.ReportMetric(hpwl, "hpwl")
}

// BenchmarkGlobalSolveWorkers measures one convex-iteration global solve at
// per-solve parallelism 1 vs 4 — the end-to-end view of the worker-pool
// port (the kernel-level w1/w4 splits live in internal/linalg and
// internal/sdp). The solver trajectory is bitwise identical across worker
// counts, so both sub-benchmarks do the same arithmetic.
func BenchmarkGlobalSolveWorkers(b *testing.B) {
	d := benchDesign(b)
	for _, w := range []int{1, 4} {
		b.Run(fmt.Sprintf("w%d", w), func(b *testing.B) {
			opt := GlobalOptions{MaxIter: 3, AlphaMaxDoublings: 1, LazyConstraints: true, Workers: w}
			o := d.Outline
			opt.Outline = &o
			for i := 0; i < b.N; i++ {
				res, err := GlobalFloorplan(d.Netlist, opt)
				if err != nil {
					b.Fatal(err)
				}
				if res.Objective == 0 {
					b.Fatal("degenerate solve")
				}
			}
		})
	}
}

// BenchmarkSequencePairPacking measures the FAST-SP packing kernel.
func BenchmarkSequencePairPacking(b *testing.B) {
	n := 200
	sp := anneal.NewSeqPair(n)
	w := make([]float64, n)
	h := make([]float64, n)
	for i := range w {
		w[i] = 1 + math.Mod(float64(i)*0.37, 3)
		h[i] = 1 + math.Mod(float64(i)*0.73, 3)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp.Pack(w, h)
	}
}

// BenchmarkAblationHierarchical compares the flat SDP formulation against
// the hierarchical extension (the paper's stated future work) on the same
// design: the hierarchical flow trades some wirelength for a much smaller
// per-solve Schur complement.
func BenchmarkAblationHierarchical(b *testing.B) {
	d := benchDesign(b)
	for _, m := range []Method{MethodSDP, MethodSDPHier} {
		b.Run(string(m), func(b *testing.B) {
			var hpwl float64
			for i := 0; i < b.N; i++ {
				fp, err := Place(d.Netlist, Config{
					Outline: d.Outline, Method: m,
					Global: GlobalOptions{MaxIter: 8, AlphaMaxDoublings: 5},
				})
				if err != nil {
					b.Fatal(err)
				}
				hpwl = fp.HPWL
			}
			b.ReportMetric(hpwl, "hpwl")
		})
	}
}

// BenchmarkAblationLegalizer compares the default penalty/L-BFGS legalization
// pipeline against the paper-faithful SOCP shape optimization solved on the
// interior-point solver (same constraint graphs, same compaction).
func BenchmarkAblationLegalizer(b *testing.B) {
	d := benchDesign(b)
	res, err := core.Solve(d.Netlist, core.Options{
		MaxIter: 8, AlphaMaxDoublings: 5,
		Outline: &d.Outline, LazyConstraints: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("penalty", func(b *testing.B) {
		var hpwl float64
		for i := 0; i < b.N; i++ {
			leg, err := legalize.Legalize(d.Netlist, res.Centers, legalize.Options{Outline: d.Outline})
			if err != nil {
				b.Fatal(err)
			}
			hpwl = leg.HPWL
		}
		b.ReportMetric(hpwl, "hpwl")
	})
	b.Run("socp", func(b *testing.B) {
		var hpwl float64
		for i := 0; i < b.N; i++ {
			leg, err := legalize.SOCPShapes(d.Netlist, res.Centers, legalize.Options{Outline: d.Outline})
			if err != nil {
				b.Fatal(err)
			}
			hpwl = leg.HPWL
		}
		b.ReportMetric(hpwl, "hpwl")
	})
}

// BenchmarkAblationRepresentation compares the two packing representations
// (sequence pair with FAST-SP vs B*-tree with contour packing) under the
// same annealing budget — the trade-off the paper's related work discusses.
func BenchmarkAblationRepresentation(b *testing.B) {
	d := benchDesign(b)
	opt := anneal.Options{Outline: d.Outline, Seed: 9}
	b.Run("seqpair", func(b *testing.B) {
		var hpwl float64
		for i := 0; i < b.N; i++ {
			res, err := anneal.Solve(d.Netlist, opt)
			if err != nil {
				b.Fatal(err)
			}
			hpwl = res.HPWL
		}
		b.ReportMetric(hpwl, "hpwl")
	})
	b.Run("btree", func(b *testing.B) {
		var hpwl float64
		for i := 0; i < b.N; i++ {
			res, err := anneal.SolveBTree(d.Netlist, opt)
			if err != nil {
				b.Fatal(err)
			}
			hpwl = res.HPWL
		}
		b.ReportMetric(hpwl, "hpwl")
	})
}
