// compare: run all six global floorplanning methods on one benchmark and
// print a Table-II-style comparison (HPWL after the shared legalization,
// Δ% relative to the SDP method).
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"sdpfloor"
)

func main() {
	bench := "n10"
	if len(os.Args) > 1 {
		bench = os.Args[1]
	}
	d, err := sdpfloor.LoadBenchmark(bench, 1, 0.15)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("benchmark %s: %d modules, %d nets, %d pads, outline %.1f x %.1f\n\n",
		d.Name, d.Netlist.N(), len(d.Netlist.Nets), len(d.Netlist.Pads),
		d.Outline.W(), d.Outline.H())

	fmt.Println("method     HPWL         Δ vs sdp   feasible  time")
	var ours float64
	for _, m := range sdpfloor.Methods {
		start := time.Now()
		fp, err := sdpfloor.Place(d.Netlist, sdpfloor.Config{
			Outline: d.Outline, Method: m, Seed: 1,
		})
		if err != nil {
			log.Fatalf("%s: %v", m, err)
		}
		delta := "    —"
		if m == sdpfloor.MethodSDP {
			ours = fp.HPWL
		} else if ours > 0 {
			delta = fmt.Sprintf("%+6.1f%%", (fp.HPWL-ours)/ours*100)
		}
		fmt.Printf("%-9s  %-11.1f  %8s   %-8v  %s\n",
			m, fp.HPWL, delta, fp.Feasible, time.Since(start).Round(time.Millisecond))
	}
}
