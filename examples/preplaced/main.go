// preplaced: pre-placed module (PPM) constraints (Section IV-B, Eqs. 22–24).
// A PLL macro is frozen at a chip corner — a common requirement the paper
// notes packing representations struggle with — and the SDP formulation
// handles it with two equality constraints per fixed module.
package main

import (
	"fmt"
	"log"

	"sdpfloor"
)

func main() {
	nl := &sdpfloor.Netlist{
		Modules: []sdpfloor.Module{
			{Name: "pll", MinArea: 4, MaxAspect: 1,
				Fixed: true, FixedPos: sdpfloor.Point{X: 1.2, Y: 1.2}},
			{Name: "core0", MinArea: 9, MaxAspect: 2},
			{Name: "core1", MinArea: 9, MaxAspect: 2},
			{Name: "mem", MinArea: 12, MaxAspect: 3},
		},
		Nets: []sdpfloor.Net{
			{Name: "clk0", Weight: 3, Modules: []int{0, 1}},
			{Name: "clk1", Weight: 3, Modules: []int{0, 2}},
			{Name: "bus", Weight: 2, Modules: []int{1, 2, 3}},
		},
	}
	outline := sdpfloor.Rect{MinX: 0, MinY: 0, MaxX: 8, MaxY: 8}

	fp, err := sdpfloor.Place(nl, sdpfloor.Config{Outline: outline})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("HPWL %.2f, feasible %v\n\n", fp.HPWL, fp.Feasible)
	for i, m := range nl.Modules {
		tag := ""
		if m.Fixed {
			tag = fmt.Sprintf("  (fixed at %.1f, %.1f)", m.FixedPos.X, m.FixedPos.Y)
		}
		fmt.Printf("%-6s center (%.2f, %.2f)%s\n", m.Name, fp.Centers[i].X, fp.Centers[i].Y, tag)
	}
	d := fp.GlobalResult.Centers[0].Sub(nl.Modules[0].FixedPos)
	fmt.Printf("\nglobal-stage PPM displacement: %.2g (should be ~0)\n",
		d.X*d.X+d.Y*d.Y)
}
