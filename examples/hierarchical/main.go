// hierarchical: the scalability extension the paper's conclusion names as
// future work. The flat SDP formulation builds a Schur complement over
// O(n²) constraints and becomes very expensive beyond ~50 modules (the
// paper reports 2.5 h for n200 with MOSEK); the hierarchical mode clusters
// the netlist, floorplans the clusters with the SDP, and refines each
// cluster with a second-level SDP — minutes instead of hours.
package main

import (
	"fmt"
	"log"
	"time"

	"sdpfloor"
)

func main() {
	d, err := sdpfloor.LoadBenchmark("n100", 1, 0.15)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("benchmark %s: %d modules, %d nets, %d pads\n\n",
		d.Name, d.Netlist.N(), len(d.Netlist.Nets), len(d.Netlist.Pads))

	start := time.Now()
	fp, err := sdpfloor.Place(d.Netlist, sdpfloor.Config{
		Outline: d.Outline,
		Method:  sdpfloor.MethodSDPHier,
		Global:  sdpfloor.GlobalOptions{MaxIter: 10, AlphaMaxDoublings: 6},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hierarchical SDP: HPWL %.0f, feasible %v, %s\n",
		fp.HPWL, fp.Feasible, time.Since(start).Round(time.Second))

	// Reference point: quadratic placement (fast but overlap-heavy).
	start = time.Now()
	qp, err := sdpfloor.Place(d.Netlist, sdpfloor.Config{
		Outline: d.Outline,
		Method:  sdpfloor.MethodQP,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("quadratic placement: HPWL %.0f, feasible %v, %s\n",
		qp.HPWL, qp.Feasible, time.Since(start).Round(time.Second))
	if fp.HPWL < qp.HPWL {
		fmt.Printf("\nhierarchical SDP improves on QP by %.1f%%\n", (qp.HPWL-fp.HPWL)/qp.HPWL*100)
	}
}
