// softmacro: the non-square adaptive distance constraints (Section IV-B,
// Eqs. 25–26). The same design is solved with the basic circle model and
// with the non-square model; for rectangle-friendly modules the adaptive
// constraints usually admit a tighter, shorter-wirelength floorplan.
package main

import (
	"fmt"
	"log"

	"sdpfloor"
)

func main() {
	d, err := sdpfloor.LoadBenchmark("n10", 1, 0.2)
	if err != nil {
		log.Fatal(err)
	}

	run := func(label string, skipEnh bool) float64 {
		fp, err := sdpfloor.Place(d.Netlist, sdpfloor.Config{
			Outline:          d.Outline,
			SkipEnhancements: skipEnh,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s HPWL %10.1f  feasible %v\n", label, fp.HPWL, fp.Feasible)
		return fp.HPWL
	}

	fmt.Printf("benchmark %s: %d soft modules (aspect bounds [1/3, 3]), %d nets\n\n",
		d.Name, d.Netlist.N(), len(d.Netlist.Nets))
	basic := run("basic circle model", true)
	enhanced := run("non-square + adaptive model", false)
	fmt.Printf("\nimprovement from the Section IV-B techniques: %.1f%%\n",
		(basic-enhanced)/basic*100)

	// Sweep the per-module aspect bound: a larger k gives the legalizer
	// more freedom and the adaptive constraints more room.
	fmt.Println("\naspect-bound sweep (all modules):")
	for _, k := range []float64{1.5, 2, 3} {
		for i := range d.Netlist.Modules {
			d.Netlist.Modules[i].MaxAspect = k
		}
		fp, err := sdpfloor.Place(d.Netlist, sdpfloor.Config{Outline: d.Outline})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  k = %.1f: HPWL %10.1f  feasible %v\n", k, fp.HPWL, fp.Feasible)
	}
}
