// iopads: boundary I/O pads and a fixed outline (Section IV-B, Eq. 21).
// A datapath chain is pulled into order by pads on opposite chip edges; the
// example shows the pad terms steering the global floorplan without adding
// SDP variables, and the fixed-outline bounds keeping every center on-die.
package main

import (
	"fmt"
	"log"

	"sdpfloor"
)

func main() {
	const n = 6
	nl := &sdpfloor.Netlist{}
	for i := 0; i < n; i++ {
		nl.Modules = append(nl.Modules, sdpfloor.Module{
			Name: fmt.Sprintf("stage%d", i), MinArea: 4, MaxAspect: 3,
		})
	}
	// Pipeline: stage0 → stage1 → … → stage5.
	for i := 0; i+1 < n; i++ {
		nl.Nets = append(nl.Nets, sdpfloor.Net{
			Name: fmt.Sprintf("pipe%d", i), Weight: 3, Modules: []int{i, i + 1},
		})
	}
	// Input pads on the west edge, output pads on the east edge.
	outline := sdpfloor.Rect{MinX: 0, MinY: 0, MaxX: 12, MaxY: 4}
	nl.Pads = []sdpfloor.Pad{
		{Name: "in0", Pos: sdpfloor.Point{X: 0, Y: 1}},
		{Name: "in1", Pos: sdpfloor.Point{X: 0, Y: 3}},
		{Name: "out0", Pos: sdpfloor.Point{X: 12, Y: 2}},
	}
	nl.Nets = append(nl.Nets,
		sdpfloor.Net{Name: "din0", Weight: 2, Modules: []int{0}, Pads: []int{0}},
		sdpfloor.Net{Name: "din1", Weight: 2, Modules: []int{0}, Pads: []int{1}},
		sdpfloor.Net{Name: "dout", Weight: 2, Modules: []int{n - 1}, Pads: []int{2}},
	)

	fp, err := sdpfloor.Place(nl, sdpfloor.Config{Outline: outline})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("HPWL %.2f, feasible %v\n\n", fp.HPWL, fp.Feasible)
	fmt.Println("The pads should have ordered the pipeline from west to east:")
	ordered := true
	for i := 0; i < n; i++ {
		fmt.Printf("  %-7s center (%.2f, %.2f)\n", nl.Modules[i].Name, fp.Centers[i].X, fp.Centers[i].Y)
		if i > 0 && fp.Centers[i].X < fp.Centers[i-1].X {
			ordered = false
		}
	}
	fmt.Printf("\nwest-to-east order preserved: %v\n", ordered)
}
