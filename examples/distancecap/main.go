// distancecap: the direct distance control Section IV-D highlights as an
// advantage of the SDP formulation — "our method can directly control the
// distance, i.e., add D_ij ≥ … or D_ij ≤ … to the constraint", e.g. a
// timing requirement between two blocks on a critical path. Soft-force
// models (AR/PP) cannot express this as a hard guarantee.
package main

import (
	"fmt"
	"log"

	"sdpfloor"
)

func main() {
	// A transmitter and receiver pulled to opposite chip edges by their I/O,
	// with a latency-critical link between them.
	nl := &sdpfloor.Netlist{
		Modules: []sdpfloor.Module{
			{Name: "tx", MinArea: 4, MaxAspect: 2},
			{Name: "rx", MinArea: 4, MaxAspect: 2},
			{Name: "buf", MinArea: 2, MaxAspect: 3},
		},
		Pads: []sdpfloor.Pad{
			{Name: "west", Pos: sdpfloor.Point{X: 0, Y: 5}},
			{Name: "east", Pos: sdpfloor.Point{X: 10, Y: 5}},
		},
		Nets: []sdpfloor.Net{
			{Name: "in", Weight: 8, Modules: []int{0}, Pads: []int{0}},
			{Name: "out", Weight: 8, Modules: []int{1}, Pads: []int{1}},
			{Name: "link", Weight: 0.1, Modules: []int{0, 1}},
			{Name: "b0", Weight: 1, Modules: []int{0, 2}},
			{Name: "b1", Weight: 1, Modules: []int{1, 2}},
		},
	}
	outline := sdpfloor.Rect{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10}

	solve := func(caps []sdpfloor.DistanceCap) float64 {
		fp, err := sdpfloor.Place(nl, sdpfloor.Config{
			Outline: outline,
			Global:  sdpfloor.GlobalOptions{DistanceCaps: caps},
		})
		if err != nil {
			log.Fatal(err)
		}
		d := fp.Global[0].Dist(fp.Global[1])
		fmt.Printf("tx-rx global distance %.2f (HPWL %.1f, feasible %v)\n", d, fp.HPWL, fp.Feasible)
		return d
	}

	fmt.Println("without timing constraint:")
	free := solve(nil)

	fmt.Println("\nwith timing constraint D(tx,rx) ≤ 3:")
	capped := solve([]sdpfloor.DistanceCap{{I: 0, J: 1, MaxDist: 3}})

	fmt.Printf("\npads pulled them %.2f apart; the cap holds them at ≤ 3 (got %.2f)\n", free, capped)
}
