// Quickstart: build a small netlist by hand, run the SDP convex-iteration
// global floorplanner plus legalization, and print the resulting floorplan.
package main

import (
	"fmt"
	"log"

	"sdpfloor"
)

func main() {
	// A toy SoC: CPU, two caches, a DSP, and an I/O controller. Areas are
	// the minimum-area constraints sᵢ; shapes are decided by the legalizer
	// within each module's aspect-ratio bound.
	nl := &sdpfloor.Netlist{
		Modules: []sdpfloor.Module{
			{Name: "cpu", MinArea: 16, MaxAspect: 2},
			{Name: "l1i", MinArea: 4, MaxAspect: 3},
			{Name: "l1d", MinArea: 4, MaxAspect: 3},
			{Name: "dsp", MinArea: 9, MaxAspect: 2},
			{Name: "ioc", MinArea: 6, MaxAspect: 3},
		},
		Pads: []sdpfloor.Pad{
			{Name: "pin_w", Pos: sdpfloor.Point{X: 0, Y: 4}},
			{Name: "pin_e", Pos: sdpfloor.Point{X: 8, Y: 4}},
		},
		Nets: []sdpfloor.Net{
			{Name: "ifetch", Weight: 4, Modules: []int{0, 1}},
			{Name: "dmem", Weight: 4, Modules: []int{0, 2}},
			{Name: "accel", Weight: 2, Modules: []int{0, 3}},
			{Name: "dma", Weight: 1, Modules: []int{2, 3, 4}}, // hyper-edge
			{Name: "io_w", Weight: 2, Modules: []int{4}, Pads: []int{0}},
			{Name: "io_e", Weight: 1, Modules: []int{3}, Pads: []int{1}},
		},
	}

	// The pads above sit on the boundary of this 8×8 outline
	// (39 area units of modules in 64 → generous whitespace).
	outline := sdpfloor.Rect{MinX: 0, MinY: 0, MaxX: 8, MaxY: 8}

	fp, err := sdpfloor.Place(nl, sdpfloor.Config{Outline: outline})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("HPWL %.2f, feasible %v\n", fp.HPWL, fp.Feasible)
	gr := fp.GlobalResult
	fmt.Printf("convex iteration: %d iterations, rank-2 reached: %v (⟨W,Z⟩ = %.2g)\n\n",
		gr.Iterations, gr.RankOK, gr.WZ)
	fmt.Println("module  x-range        y-range        w x h")
	for i, r := range fp.Rects {
		fmt.Printf("%-6s  [%5.2f,%5.2f]  [%5.2f,%5.2f]  %.2f x %.2f\n",
			nl.Modules[i].Name, r.MinX, r.MaxX, r.MinY, r.MaxY, r.W(), r.H())
	}
}
