package sdpfloor

import (
	"context"
	"fmt"

	"sdpfloor/internal/portfolio"
	"sdpfloor/internal/trace"
)

// Portfolio types, re-exported for API users.
type (
	// PortfolioReport is one contender's outcome in a finished race.
	PortfolioReport = portfolio.Report
	// PortfolioKnobs are the per-size hyperparameters of a tuning entry.
	PortfolioKnobs = portfolio.Knobs
	// PortfolioTable is a persisted per-size default table mapping instance
	// size to a contender set and knobs; see LoadPortfolioTable.
	PortfolioTable = portfolio.Table
)

// Contender race-status values reported in PortfolioReport.Status.
const (
	PortfolioWon        = portfolio.StatusWon
	PortfolioBestEffort = portfolio.StatusBestEffort
	PortfolioLost       = portfolio.StatusLost
	PortfolioCancelled  = portfolio.StatusCancelled
	PortfolioFailed     = portfolio.StatusFailed
)

// PortfolioConfig configures MethodPortfolio.
type PortfolioConfig struct {
	// Contenders are the solo methods to race, in priority order (the
	// first contender wins ties). Every entry must come from Methods.
	// Empty selects the contender set — and tuning knobs — from Table
	// (or the built-in defaults) by instance size.
	Contenders []Method
	// Table overrides the built-in per-size default table. It is consulted
	// only when Contenders is empty: an explicit contender list races with
	// exactly the caller's Config, so a portfolio win stays bitwise
	// reproducible as a solo run of the winning method.
	Table *PortfolioTable
}

// AnnealKnobs tune the simulated-annealing engine through Config without
// exposing the full anneal.Options surface. Zero values keep defaults.
type AnnealKnobs struct {
	// CoolingRate is the geometric temperature decay (default 0.93).
	CoolingRate float64
	// MovesPerTemp is the number of proposed moves per temperature step
	// (default 30·n).
	MovesPerTemp int
	// MinTemp terminates the schedule (default 1e-5 of the initial temp).
	MinTemp float64
}

// LoadPortfolioTable reads a tuning table (the JSON format shipped in
// results/portfolio_defaults.json) and validates its contender names
// against the solo-method universe.
func LoadPortfolioTable(path string) (*PortfolioTable, error) {
	t, err := portfolio.LoadTable(path)
	if err != nil {
		return nil, err
	}
	if err := t.Validate(func(name string) bool { return isSoloMethod(Method(name)) }); err != nil {
		return nil, err
	}
	return t, nil
}

// DefaultPortfolioTable returns the built-in per-size default table.
func DefaultPortfolioTable() *PortfolioTable { return portfolio.DefaultTable() }

func isSoloMethod(m Method) bool {
	for _, s := range Methods {
		if m == s {
			return true
		}
	}
	return false
}

// placePortfolio runs MethodPortfolio: resolve the contender set, race the
// engines under ctx, and return the winner's floorplan annotated with the
// per-contender reports. Worker budgeting: Config.Global.Workers is the
// total budget, split across contenders inside the race (each contender
// gets at least one; the shared pool bounds actual parallelism).
func placePortfolio(ctx context.Context, nl *Netlist, cfg Config) (*Floorplan, error) {
	contenders, raceCfg, err := resolveContenders(nl, cfg)
	if err != nil {
		return nil, err
	}
	rec := raceCfg.Global.Trace

	entries := make([]portfolio.Contender, len(contenders))
	for i, m := range contenders {
		m := m
		sub := raceCfg
		sub.Method = m
		sub.Portfolio = PortfolioConfig{}
		// The contender's entire solver tree — engine, sub-solvers,
		// legalizer — reports under its method name as the trace run id,
		// so the interleaved streams of concurrent contenders stay
		// separable (and tracesum can pair runs) downstream.
		sub.Global.Trace = trace.WithRun(rec, string(m))
		entries[i] = portfolio.Contender{
			Name: string(m),
			Run: func(cctx context.Context, workers int) (*portfolio.Outcome, error) {
				c := sub
				c.Global.Workers = workers
				fp, err := PlaceContext(cctx, nl, c)
				if fp == nil {
					return nil, err
				}
				out := &portfolio.Outcome{Payload: fp}
				if err != nil {
					// Cancellation partial: only the raw global centers
					// exist, so score those.
					out.Partial = true
					if fp.Global != nil {
						out.HPWL = nl.HPWL(fp.Global)
					}
					return out, err
				}
				out.HPWL = fp.HPWL
				out.Feasible = fp.Feasible
				return out, nil
			},
		}
	}

	res, raceErr := portfolio.Race(ctx, entries, portfolio.Options{
		Workers: raceCfg.Global.Workers,
		Trace:   rec,
		Logf:    raceCfg.Global.Logf,
	})
	if res == nil || res.Winner < 0 || res.Outcome == nil {
		return nil, raceErr
	}
	fp := res.Outcome.Payload.(*Floorplan)
	fp.Winner = contenders[res.Winner]
	fp.Portfolio = res.Reports
	// raceErr is non-nil exactly when the best outcome is a deadline
	// partial — the same partial-result-with-error contract the solo
	// methods follow.
	return fp, raceErr
}

// resolveContenders produces the contender list and the (possibly
// knob-tuned) config the race runs with.
func resolveContenders(nl *Netlist, cfg Config) ([]Method, Config, error) {
	if len(cfg.Portfolio.Contenders) > 0 {
		seen := make(map[Method]bool, len(cfg.Portfolio.Contenders))
		for _, m := range cfg.Portfolio.Contenders {
			if !isSoloMethod(m) {
				return nil, cfg, fmt.Errorf("sdpfloor: portfolio contender %q is not a solo method", m)
			}
			if seen[m] {
				return nil, cfg, fmt.Errorf("sdpfloor: portfolio contender %q listed twice", m)
			}
			seen[m] = true
		}
		return cfg.Portfolio.Contenders, cfg, nil
	}

	table := cfg.Portfolio.Table
	if table == nil {
		table = portfolio.DefaultTable()
	}
	entry, ok := table.Pick(nl.N())
	if !ok {
		return nil, cfg, fmt.Errorf("sdpfloor: portfolio tuning table is empty")
	}
	contenders := make([]Method, len(entry.Contenders))
	for i, name := range entry.Contenders {
		m := Method(name)
		if !isSoloMethod(m) {
			return nil, cfg, fmt.Errorf("sdpfloor: tuning table contender %q is not a solo method", name)
		}
		contenders[i] = m
	}
	// Table-selected races inherit the entry's knobs wherever the caller
	// left the corresponding option at its zero value — explicit settings
	// always win over learned defaults.
	k := entry.Knobs
	if cfg.Global.Alpha0 == 0 && k.Alpha0 > 0 {
		cfg.Global.Alpha0 = k.Alpha0
	}
	if cfg.Global.ADMMMu0 == 0 && k.ADMMMu0 > 0 {
		cfg.Global.ADMMMu0 = k.ADMMMu0
	}
	if cfg.Anneal.CoolingRate == 0 && k.SACoolingRate > 0 {
		cfg.Anneal.CoolingRate = k.SACoolingRate
	}
	if cfg.Anneal.MovesPerTemp == 0 && k.SAMovesPerTemp > 0 {
		cfg.Anneal.MovesPerTemp = k.SAMovesPerTemp
	}
	return contenders, cfg, nil
}
