module sdpfloor

go 1.22
