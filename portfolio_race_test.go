package sdpfloor

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"testing"
	"time"

	"sdpfloor/internal/trace"
)

// TestPortfolioWinnerMatchesSoloBitwise is the differential oracle: a race
// win must be bitwise identical to running the winning method solo with the
// same seed and worker budget. Whichever contender wins (arrival order is
// wall-clock), its result is reproducible outside the race.
func TestPortfolioWinnerMatchesSoloBitwise(t *testing.T) {
	nl, out := smallNL(t)
	cfg := Config{Outline: out, Method: MethodPortfolio, Seed: 3}
	cfg.Portfolio.Contenders = []Method{MethodQP, MethodSA, MethodAnalytic}

	fp, err := Place(nl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(fp.Portfolio) != 3 {
		t.Fatalf("%d contender reports, want 3", len(fp.Portfolio))
	}
	var winner *PortfolioReport
	wonCount := 0
	for i := range fp.Portfolio {
		r := &fp.Portfolio[i]
		if r.Status == PortfolioWon {
			wonCount++
			winner = r
		}
	}
	if wonCount != 1 || winner == nil || string(fp.Winner) != winner.Name {
		t.Fatalf("want exactly one winner matching fp.Winner=%s, reports %+v", fp.Winner, fp.Portfolio)
	}

	solo := Config{Outline: out, Method: fp.Winner, Seed: 3}
	solo.Global.Workers = winner.Workers
	ref, err := Place(nl, solo)
	if err != nil {
		t.Fatalf("solo %s: %v", fp.Winner, err)
	}
	if math.Float64bits(fp.HPWL) != math.Float64bits(ref.HPWL) {
		t.Fatalf("HPWL differs: portfolio %v (%x), solo %v (%x)",
			fp.HPWL, math.Float64bits(fp.HPWL), ref.HPWL, math.Float64bits(ref.HPWL))
	}
	if fp.Feasible != ref.Feasible {
		t.Fatalf("feasible differs: portfolio %v, solo %v", fp.Feasible, ref.Feasible)
	}
	if len(fp.Rects) != len(ref.Rects) {
		t.Fatalf("rect count differs: %d vs %d", len(fp.Rects), len(ref.Rects))
	}
	for i := range fp.Rects {
		a, b := fp.Rects[i], ref.Rects[i]
		if math.Float64bits(a.MinX) != math.Float64bits(b.MinX) ||
			math.Float64bits(a.MinY) != math.Float64bits(b.MinY) ||
			math.Float64bits(a.MaxX) != math.Float64bits(b.MaxX) ||
			math.Float64bits(a.MaxY) != math.Float64bits(b.MaxY) {
			t.Fatalf("rect %d differs bitwise: portfolio %+v, solo %+v", i, a, b)
		}
	}
}

// cancelOnEvent cancels a context the first time the watched (solver, kind)
// event is recorded — a deterministic "mid-solve" trigger: the engine is by
// definition inside its loop when its own event fires, with no wall-clock
// timing involved.
type cancelOnEvent struct {
	inner  trace.Recorder
	solver string
	kind   string
	once   sync.Once
	cancel context.CancelFunc
}

func (c *cancelOnEvent) Enabled() bool { return true }

func (c *cancelOnEvent) Record(ev trace.Event) {
	c.inner.Record(ev)
	if ev.Solver == c.solver && ev.Kind == c.kind {
		c.once.Do(c.cancel)
	}
}

// TestCancellationHygieneAllMethods cancels every solo engine mid-solve and
// checks the shared contract the portfolio race depends on: the error wraps
// context.Canceled, the solve unwinds promptly, and every trace run — the
// engine's own stream included — carries exactly one final event.
func TestCancellationHygieneAllMethods(t *testing.T) {
	// The engine stream each method reports under, and the event that
	// proves it is mid-solve (qp emits no iter events, so its start — which
	// is recorded after the entry cancellation check — is the trigger).
	cases := []struct {
		method  Method
		solver  string
		trigger string
	}{
		{MethodSDP, "core", trace.KindIter},
		// hier itself may emit no iter events on small instances; the inner
		// core iterations (see innerSolver) are the mid-solve trigger, and
		// the single hier final is still required.
		{MethodSDPHier, "hier", trace.KindIter},
		{MethodAR, "ar", trace.KindIter},
		{MethodPP, "pp", trace.KindIter},
		{MethodQP, "qp", trace.KindStart},
		{MethodSA, "sa", trace.KindIter},
		{MethodAnalytic, "analytic", trace.KindIter},
	}
	nl, out := smallNL(t)
	for _, tc := range cases {
		tc := tc
		t.Run(string(tc.method), func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			ring := trace.NewRing(4096)
			rec := &cancelOnEvent{inner: ring, solver: innerSolver(tc.method), kind: tc.trigger, cancel: cancel}
			cfg := Config{Outline: out, Method: tc.method, Seed: 3, Trace: rec}

			start := time.Now()
			_, err := PlaceContext(ctx, nl, cfg)
			elapsed := time.Since(start)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want wrapped context.Canceled", err)
			}
			if elapsed > 10*time.Second {
				t.Fatalf("solve returned after %s, cancellation is not bounded", elapsed)
			}

			// Every stream must be a sequence of well-paired start…final
			// spans — sub-solvers (ipm, lbfgs) legitimately run several
			// sequential spans inside one engine run, but a cancelled span
			// must still close with exactly one final, and nothing may
			// emit a final outside a span.
			open := map[string]bool{}
			finals := map[string]int{}
			for _, ev := range ring.Snapshot() {
				key := ev.Solver + "\x00" + ev.Run
				switch ev.Kind {
				case trace.KindStart:
					if open[key] {
						t.Fatalf("stream %q: start while a span is already open", key)
					}
					open[key] = true
				case trace.KindFinal:
					if !open[key] {
						t.Fatalf("stream %q: final without an open span", key)
					}
					open[key] = false
					finals[key]++
				}
			}
			for key, isOpen := range open {
				if isOpen {
					t.Fatalf("stream %q: span left open (start without final) after cancellation", key)
				}
			}
			if n := finals[tc.solver+"\x00"]; n != 1 {
				t.Fatalf("engine stream %q has %d final events, want exactly 1 (finals: %v)",
					tc.solver, n, describeFinals(finals))
			}
		})
	}
}

// innerSolver names the stream whose events prove the method is mid-solve.
func innerSolver(m Method) string {
	switch m {
	case MethodSDP, MethodSDPHier:
		return "core"
	case MethodAR:
		return "ar"
	case MethodPP:
		return "pp"
	case MethodQP:
		return "qp"
	case MethodSA:
		return "sa"
	}
	return "analytic"
}

func describeFinals(finals map[string]int) string {
	out := ""
	for k, n := range finals {
		out += fmt.Sprintf("%q:%d ", k, n)
	}
	return out
}

// TestPortfolioWallTimeWithinBestSoloBudget is the scheduling acceptance
// check on a real n30 instance: with enough CPUs for every contender, a
// race must finish within 10% of its best solo contender (plus a small
// absolute slack for goroutine startup and timer granularity). With fewer
// CPUs than contenders the race is legitimately serialized, so the bound
// relaxes to the sum of the solo times.
func TestPortfolioWallTimeWithinBestSoloBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock measurement; skipped in -short")
	}
	d, err := LoadBenchmark("n30", 1, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	contenders := []Method{MethodQP, MethodSA, MethodAnalytic}

	best := time.Duration(math.MaxInt64)
	var sum time.Duration
	for _, m := range contenders {
		cfg := Config{Outline: d.Outline, Method: m, Seed: 3}
		cfg.Global.Workers = 1 // same budget each contender gets in the race
		start := time.Now()
		if _, err := Place(d.Netlist, cfg); err != nil {
			t.Fatalf("solo %s: %v", m, err)
		}
		el := time.Since(start)
		sum += el
		if el < best {
			best = el
		}
	}

	cfg := Config{Outline: d.Outline, Method: MethodPortfolio, Seed: 3}
	cfg.Portfolio.Contenders = contenders
	cfg.Global.Workers = len(contenders)
	start := time.Now()
	fp, err := Place(d.Netlist, cfg)
	raceWall := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}

	const slack = 250 * time.Millisecond
	bound := best + best/10 + slack
	if runtime.GOMAXPROCS(0) < len(contenders) {
		bound = sum + sum/10 + slack
	}
	if raceWall > bound {
		t.Fatalf("portfolio wall %s exceeds bound %s (best solo %s, sum %s, GOMAXPROCS %d, winner %s)",
			raceWall, bound, best, sum, runtime.GOMAXPROCS(0), fp.Winner)
	}
	t.Logf("portfolio %s vs best solo %s (winner %s)", raceWall, best, fp.Winner)
}
