package sdpfloor

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"
)

// smallNL builds a small instance with pads for end-to-end tests.
func smallNL(t *testing.T) (*Netlist, Rect) {
	t.Helper()
	d, err := LoadBenchmark("n10", 1, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	return d.Netlist, d.Outline
}

func TestPlaceSDPEndToEnd(t *testing.T) {
	nl, out := smallNL(t)
	fp, err := Place(nl, Config{Outline: out})
	if err != nil {
		t.Fatal(err)
	}
	if !fp.Feasible {
		t.Fatalf("SDP+legalize infeasible at 25%% whitespace (HPWL %g)", fp.HPWL)
	}
	if fp.HPWL <= 0 {
		t.Fatal("HPWL must be positive")
	}
	if fp.GlobalResult == nil || !fp.GlobalResult.RankOK {
		t.Fatal("expected rank-2 convergence diagnostics")
	}
	checkLegal(t, nl, out, fp)
}

func TestPlaceAllMethodsProduceLegalResults(t *testing.T) {
	nl, out := smallNL(t)
	for _, m := range Methods {
		fp, err := Place(nl, Config{Outline: out, Method: m, Seed: 3})
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if len(fp.Rects) != nl.N() {
			t.Fatalf("%s: %d rects for %d modules", m, len(fp.Rects), nl.N())
		}
		checkLegal(t, nl, out, fp)
		if fp.HPWL <= 0 {
			t.Fatalf("%s: non-positive HPWL", m)
		}
	}
}

// checkLegal verifies overlap-freedom and containment whenever the result
// claims feasibility, and area/aspect always.
func checkLegal(t *testing.T, nl *Netlist, out Rect, fp *Floorplan) {
	t.Helper()
	for i := range fp.Rects {
		if math.Abs(fp.Rects[i].Area()-nl.Modules[i].MinArea) > 1e-5*nl.Modules[i].MinArea {
			t.Fatalf("module %d area %g, want %g", i, fp.Rects[i].Area(), nl.Modules[i].MinArea)
		}
		ar := fp.Rects[i].W() / fp.Rects[i].H()
		k := nl.Modules[i].MaxAspect
		if ar > k*(1+1e-6) || ar < 1/k*(1-1e-6) {
			t.Fatalf("module %d aspect %g outside [1/%g, %g]", i, ar, k, k)
		}
	}
	if !fp.Feasible {
		return
	}
	for i := range fp.Rects {
		if !out.ContainsRect(fp.Rects[i], 1e-6) {
			t.Fatalf("module %d escapes outline", i)
		}
		for j := i + 1; j < len(fp.Rects); j++ {
			if fp.Rects[i].Intersects(fp.Rects[j], 1e-9) {
				t.Fatalf("modules %d and %d overlap", i, j)
			}
		}
	}
}

func TestPlaceSDPBeatsQPOnWirelength(t *testing.T) {
	// The headline claim, in miniature: the SDP method should beat the
	// overlap-heavy QP seed after shared legalization.
	nl, out := smallNL(t)
	sdp, err := Place(nl, Config{Outline: out})
	if err != nil {
		t.Fatal(err)
	}
	qp, err := Place(nl, Config{Outline: out, Method: MethodQP})
	if err != nil {
		t.Fatal(err)
	}
	if sdp.HPWL > qp.HPWL*1.10 {
		t.Fatalf("SDP HPWL %g much worse than QP %g", sdp.HPWL, qp.HPWL)
	}
}

func TestPlaceErrors(t *testing.T) {
	nl, out := smallNL(t)
	if _, err := Place(nil, Config{Outline: out}); err == nil {
		t.Fatal("expected error for nil netlist")
	}
	if _, err := Place(nl, Config{}); err == nil {
		t.Fatal("expected error for missing outline")
	}
	if _, err := Place(nl, Config{Outline: out, Method: "nope"}); err == nil {
		t.Fatal("expected error for unknown method")
	}
}

func TestOutlineFor(t *testing.T) {
	nl, _ := smallNL(t)
	out := OutlineFor(nl, 2, 0.15)
	if math.Abs(out.H()/out.W()-2) > 1e-9 {
		t.Fatalf("aspect = %g", out.H()/out.W())
	}
	want := nl.TotalArea() * 1.15
	if math.Abs(out.Area()-want) > 1e-6*want {
		t.Fatalf("area = %g, want %g", out.Area(), want)
	}
	// Defaults kick in for zero arguments.
	def := OutlineFor(nl, 0, 0)
	if math.Abs(def.H()/def.W()-1) > 1e-9 {
		t.Fatal("default aspect should be 1")
	}
}

func TestLoadBenchmarkUnknown(t *testing.T) {
	if _, err := LoadBenchmark("bogus", 1, 0.15); err == nil {
		t.Fatal("expected error")
	}
}

func TestHPWLWrapper(t *testing.T) {
	nl := &Netlist{
		Modules: []Module{{Name: "a", MinArea: 1, MaxAspect: 1}, {Name: "b", MinArea: 1, MaxAspect: 1}},
		Nets:    []Net{{Name: "n", Weight: 1, Modules: []int{0, 1}}},
	}
	got := HPWL(nl, []Point{{X: 0, Y: 0}, {X: 3, Y: 4}})
	if got != 7 {
		t.Fatalf("HPWL = %g, want 7", got)
	}
}

func TestGlobalFloorplanDirect(t *testing.T) {
	nl, out := smallNL(t)
	res, err := GlobalFloorplan(nl, GlobalOptions{MaxIter: 10, LazyConstraints: true, Outline: &out})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centers) != nl.N() {
		t.Fatal("center count mismatch")
	}
	leg, err := Legalize(nl, res.Centers, out)
	if err != nil {
		t.Fatal(err)
	}
	if leg.HPWL <= 0 {
		t.Fatal("legalized HPWL must be positive")
	}
}

func TestPlaceIncrementalFreezesModules(t *testing.T) {
	nl, out := smallNL(t)
	base, err := Place(nl, Config{Outline: out})
	if err != nil {
		t.Fatal(err)
	}
	frozen := make([]bool, nl.N())
	frozen[0] = true
	frozen[3] = true
	eco, err := PlaceIncremental(nl, base.Global, frozen, Config{Outline: out})
	if err != nil {
		t.Fatal(err)
	}
	// Frozen modules keep their global positions (the global stage pins
	// them; legalization may nudge, so check the global result).
	for _, i := range []int{0, 3} {
		if eco.Global[i].Dist(base.Global[i]) > 1e-3*out.W() {
			t.Fatalf("frozen module %d moved: %v -> %v", i, base.Global[i], eco.Global[i])
		}
	}
	// The netlist's Fixed flags are restored.
	for i, m := range nl.Modules {
		if m.Fixed {
			t.Fatalf("module %d left Fixed after PlaceIncremental", i)
		}
	}
	if eco.HPWL <= 0 {
		t.Fatal("ECO result must have positive HPWL")
	}
}

func TestPlaceIncrementalErrors(t *testing.T) {
	nl, out := smallNL(t)
	if _, err := PlaceIncremental(nl, nil, nil, Config{Outline: out}); err == nil {
		t.Fatal("expected length error")
	}
	if _, err := PlaceIncremental(nil, nil, nil, Config{Outline: out}); err == nil {
		t.Fatal("expected empty netlist error")
	}
}

// TestPlaceContextDeadline proves the contract cmd/sdpfloor's -timeout and
// the service rely on: a deadline mid-solve returns promptly with
// context.DeadlineExceeded and a partial Floorplan carrying the
// convex-iteration diagnostics reached so far.
func TestPlaceContextDeadline(t *testing.T) {
	d, err := LoadBenchmark("n50", 1, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	start := time.Now()
	fp, err := PlaceContext(ctx, d.Netlist, Config{Outline: d.Outline})
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	// Prompt: the per-iteration checks must fire well before a full solve
	// (an n50 SDP run takes many seconds; minutes under -race). The bound
	// is loose to absorb the race detector's slowdown of one iteration.
	if elapsed > 10*time.Second {
		t.Fatalf("solve returned after %s, cancellation is not prompt", elapsed)
	}
	if fp == nil || fp.GlobalResult == nil {
		t.Fatalf("no partial result on deadline: %+v", fp)
	}
}

// TestPlaceContextCancelled proves an already-cancelled context aborts
// before any heavy work.
func TestPlaceContextCancelled(t *testing.T) {
	nl, out := smallNL(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := PlaceContext(ctx, nl, Config{Outline: out}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
}
