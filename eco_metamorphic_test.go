package sdpfloor

import (
	"bytes"
	"fmt"
	"math"
	"strings"
	"testing"

	"sdpfloor/internal/trace"
)

// TestECOMetamorphicRelabelCommutes — relabel-then-ECO must equal
// ECO-then-relabel exactly. GenerateDelta picks modules by index, so
// generating the delta from the relabeled netlist IS the relabeled delta;
// the whole pipeline below it works on indices, so the re-solve's HPWL and
// its trace stream (modulo timestamps) must be bitwise identical to the
// unrenamed run's.
func TestECOMetamorphicRelabelCommutes(t *testing.T) {
	run := func(rename bool) (float64, []string) {
		d, err := LoadBenchmark("n10", 1, 0.15)
		if err != nil {
			t.Fatal(err)
		}
		if rename {
			n := len(d.Netlist.Modules)
			for i := range d.Netlist.Modules {
				d.Netlist.Modules[i].Name = fmt.Sprintf("blk%02d", (i+1)%n)
			}
		}
		cfg := metamorphicConfig(d.Outline)
		prev, err := Place(d.Netlist, cfg)
		if err != nil {
			t.Fatal(err)
		}
		delta := GenerateDelta(d.Netlist, 11, 4)
		var buf bytes.Buffer
		cfg.Trace = trace.NewJSONL(&buf)
		fp, _, err := Resolve(d.Netlist, prev, delta, cfg)
		if err != nil {
			t.Fatal(err)
		}
		lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
		for i := range lines {
			lines[i] = trace.StripTS(lines[i])
		}
		return fp.HPWL, lines
	}

	baseHPWL, baseTrace := run(false)
	relHPWL, relTrace := run(true)
	if math.Float64bits(baseHPWL) != math.Float64bits(relHPWL) {
		t.Errorf("ECO HPWL changed under relabeling: %g -> %g", baseHPWL, relHPWL)
	}
	if len(baseTrace) != len(relTrace) {
		t.Fatalf("ECO trace length changed under relabeling: %d -> %d lines", len(baseTrace), len(relTrace))
	}
	for i := range baseTrace {
		if baseTrace[i] != relTrace[i] {
			t.Fatalf("ECO trace line %d changed under relabeling:\nbase %s\nrelabeled %s",
				i, baseTrace[i], relTrace[i])
		}
	}
}

// TestECOMetamorphicDeltaInverse — resolving a delta and then its inverse
// returns to the original problem instance, so the final floorplan's HPWL
// must land near the original solve's. The round trip re-enters the convex
// iteration twice from perturbed priors, so the law carries a tolerance
// (the iteration is a heuristic and basin drift in either direction is
// expected), not bitwise equality.
func TestECOMetamorphicDeltaInverse(t *testing.T) {
	d, err := LoadBenchmark("n10", 1, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	cfg := metamorphicConfig(d.Outline)
	orig, err := Place(d.Netlist, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range []int64{1, 2, 3, 4, 5} {
		delta := GenerateDelta(d.Netlist, seed, 3)
		inv, err := delta.Inverse(d.Netlist)
		if err != nil {
			t.Fatalf("seed %d: inverse: %v", seed, err)
		}
		mid, mut, err := Resolve(d.Netlist, orig, delta, cfg)
		if err != nil {
			t.Fatalf("seed %d: resolve delta: %v", seed, err)
		}
		back, restored, err := Resolve(mut, mid, inv, cfg)
		if err != nil {
			t.Fatalf("seed %d: resolve inverse: %v", seed, err)
		}
		// The restored netlist models the original instance (the netlist-level
		// round trip is pinned exactly in internal/netlist); here the law under
		// test is that the SOLUTION returns too.
		if restored.N() != d.Netlist.N() {
			t.Fatalf("seed %d: inverse did not restore the module count: %d vs %d",
				seed, restored.N(), d.Netlist.N())
		}
		rel := math.Abs(back.HPWL-orig.HPWL) / orig.HPWL
		t.Logf("seed %d: orig HPWL %.1f, after delta+inverse %.1f (%.2f%%)",
			seed, orig.HPWL, back.HPWL, 100*rel)
		if rel > 0.10 {
			t.Errorf("seed %d: delta+inverse drifted %.1f%% from the original HPWL", seed, 100*rel)
		}
	}
}
