GO ?= go

.PHONY: build test check lint race bench bench-baseline benchdiff clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# lint fails when any file needs gofmt or go vet flags an issue.
lint:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...

# check is the gate CI and pre-commit should run: formatting, static
# analysis, then the suite under the race detector. -short skips the
# multi-minute paper-table reproductions (single-threaded solver runs that
# the race detector slows ~15x without adding coverage); run `make test`
# for those.
check: lint
	$(GO) test -race -short ./...

race:
	$(GO) test -race -short ./...

bench:
	$(GO) test -bench=. -benchmem

# bench-baseline refreshes the committed benchmark snapshot that CI's
# benchdiff job compares against; see docs/PERFORMANCE.md before updating.
bench-baseline:
	$(GO) run ./cmd/benchdiff run -o BENCH_baseline.json

# benchdiff runs the kernel benchmarks and compares against the committed
# baseline, failing on >25% ns/op regressions.
benchdiff:
	$(GO) run ./cmd/benchdiff run -o BENCH_current.json
	$(GO) run ./cmd/benchdiff compare -baseline BENCH_baseline.json -current BENCH_current.json

clean:
	$(GO) clean ./...
	rm -f BENCH_current.json
