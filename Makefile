GO ?= go

.PHONY: build test check race bench clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the gate CI and pre-commit should run: static analysis plus the
# suite under the race detector. -short skips the multi-minute paper-table
# reproductions (single-threaded solver runs that the race detector slows
# ~15x without adding coverage); run `make test` for those.
check:
	$(GO) vet ./...
	$(GO) test -race -short ./...

race:
	$(GO) test -race -short ./...

bench:
	$(GO) test -bench=. -benchmem

clean:
	$(GO) clean ./...
