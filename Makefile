GO ?= go

.PHONY: build test check lint sdpvet vet-json race portfolio-race cover bench bench-baseline bench-allocs benchdiff fuzz-smoke eco integration clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# lint fails when any file needs gofmt or go vet flags an issue.
lint:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...

# sdpvet runs the repo's custom static analyzer (cmd/sdpvet): determinism,
# cancellation, parallel-safety, resource, telemetry, and durability
# invariants the compiler and -race cannot check. See docs/LINTING.md for
# the analyzer catalogue and the //sdpvet:ignore escape hatch.
sdpvet:
	$(GO) run ./cmd/sdpvet ./...

# vet-json prints sdpvet findings as a JSON array for editor and tooling
# integration; exit status is the same as `make sdpvet`.
vet-json:
	$(GO) run ./cmd/sdpvet -json ./...

# check is the gate CI and pre-commit should run: formatting, static
# analysis (go vet + sdpvet), then the suite under the race detector.
# -short skips the multi-minute paper-table reproductions (single-threaded
# solver runs that the race detector slows ~15x without adding coverage);
# run `make test` for those.
check: lint sdpvet
	$(GO) test -race -shuffle=on -short ./...

race:
	$(GO) test -race -shuffle=on -short ./...

# portfolio-race mirrors CI's portfolio determinism gate: every
# portfolio/cancellation test twice, shuffled, under the race detector —
# including the wall-clock scheduling acceptance test that -short skips.
# A race winner or contender status that depends on scheduler jitter
# fails here. See docs/PORTFOLIO.md.
portfolio-race:
	$(GO) test -race -shuffle=on -run 'Portfolio|Cancel' -count=2 ./...

# cover prints the per-function coverage summary; report-only, no threshold.
cover:
	$(GO) test -short -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out

bench:
	$(GO) test -bench=. -benchmem

# bench-baseline refreshes the committed benchmark snapshot that CI's
# benchdiff and alloc-gate jobs compare against; the snapshot carries both
# the timing and the allocs/op + B/op columns. See docs/PERFORMANCE.md
# before updating.
bench-baseline:
	$(GO) run ./cmd/benchdiff run -o BENCH_baseline.json

# bench-allocs mirrors CI's hard alloc gate: one iteration per benchmark
# (allocation counts are deterministic, so one is enough), then a
# zero-tolerance comparison of allocs/op and B/op against the committed
# baseline. Timing is ignored entirely.
bench-allocs:
	$(GO) run ./cmd/benchdiff run -benchtime 1x -o BENCH_current.json
	$(GO) run ./cmd/benchdiff compare -gate allocs -baseline BENCH_baseline.json -current BENCH_current.json

# benchdiff runs the kernel benchmarks and compares against the committed
# baseline, failing on >25% ns/op regressions.
benchdiff:
	$(GO) run ./cmd/benchdiff run -o BENCH_current.json
	$(GO) run ./cmd/benchdiff compare -baseline BENCH_baseline.json -current BENCH_current.json

# fuzz-smoke gives each format-parser fuzz target a short native-fuzzing
# run (Go can only fuzz one target per invocation). The seeds always run
# under plain `make test`; this adds coverage-guided exploration on top.
FUZZTIME ?= 30s
fuzz-smoke:
	$(GO) test ./internal/gsrc/ -run '^$$' -fuzz FuzzParseBlocks -fuzztime $(FUZZTIME)
	$(GO) test ./internal/gsrc/ -run '^$$' -fuzz FuzzParseNets -fuzztime $(FUZZTIME)
	$(GO) test ./internal/gsrc/ -run '^$$' -fuzz FuzzParsePl -fuzztime $(FUZZTIME)
	$(GO) test ./internal/mcnc/ -run '^$$' -fuzz FuzzParseMCNC -fuzztime $(FUZZTIME)

# eco is CI's incremental-floorplanning gate: the differential/metamorphic
# ECO oracle, the MCNC corpus, and the service's ECO chain tests, twice
# under the race detector with shuffled order (warm-start reuse must not
# depend on test order or scheduling).
eco:
	$(GO) test -race -count=2 -shuffle=on -run 'ECO|MCNC|Incremental' ./...

# integration builds the real floorpland binary, starts it with -data-dir,
# submits a batch, SIGKILLs the daemon mid-solve, restarts it on the same
# journal, and asserts every job finishes exactly once. Behind a build tag
# because it spawns processes and takes seconds; plain `make test` skips it.
integration:
	$(GO) test -tags integration -count=1 -timeout 600s ./cmd/floorpland/

clean:
	$(GO) clean ./...
	rm -f BENCH_current.json cover.out
