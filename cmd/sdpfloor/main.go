// Command sdpfloor runs the SDP convex-iteration global floorplanner (or one
// of the baselines) on a benchmark and reports the legalized result.
//
// Usage:
//
//	sdpfloor -bench n10                 # builtin synthetic benchmark
//	sdpfloor -dir bench/ -design n10    # GSRC .blocks/.nets/.pl on disk
//	sdpfloor -bench n30 -method ar -aspect 2 -svg out.svg -v
//	sdpfloor -bench n30 -method portfolio -timeout 30s        # tuned default race
//	sdpfloor -bench n30 -portfolio sdp,sa -timeout 30s        # explicit contender race
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"sdpfloor"
	"sdpfloor/internal/gsrc"
	"sdpfloor/internal/svg"
	"sdpfloor/internal/trace"
	"sdpfloor/internal/version"
)

// Exit statuses: 1 for errors, 2 for usage, 3 when -timeout expired.
const exitTimeout = 3

func validMethod(m sdpfloor.Method) bool {
	for _, v := range sdpfloor.Methods {
		if m == v {
			return true
		}
	}
	return false
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("sdpfloor: ")

	var (
		bench      = flag.String("bench", "", "builtin benchmark name (n10, n30, n50, n100, n200, ami33, ami49)")
		dir        = flag.String("dir", "", "directory with <design>.blocks/.nets/.pl files")
		design     = flag.String("design", "", "design name inside -dir")
		method     = flag.String("method", "sdp", "global method: sdp, sdp-hier, ar, pp, qp, sa, analytic, portfolio")
		contend    = flag.String("portfolio", "", "comma-separated contenders to race in priority order (implies -method portfolio); empty with -method portfolio uses the per-size tuning table")
		tablePath  = flag.String("portfolio-table", "", "JSON tuning table for portfolio contender selection (default: built-in table)")
		aspect     = flag.Float64("aspect", 1, "outline height:width ratio")
		whitespace = flag.Float64("whitespace", 0.15, "outline whitespace fraction")
		seed       = flag.Int64("seed", 1, "seed for stochastic methods")
		basic      = flag.Bool("basic", false, "disable the Section IV-B enhancements (sdp only)")
		socp       = flag.Bool("socp", false, "legalize with the exact SOCP shape optimization (slow; small designs)")
		jsonOut    = flag.String("json", "", "write the result (rects, centers, HPWL) as JSON to this path")
		svgOut     = flag.String("svg", "", "write the legalized floorplan as SVG to this path")
		traceOut   = flag.String("trace", "", "write per-iteration solver telemetry as JSONL to this path (see docs/TRACING.md)")
		timeout    = flag.Duration("timeout", 0, "abort the solve after this long (0 = no limit); exits with status 3")
		verbose    = flag.Bool("v", false, "log solver progress")
		showVer    = flag.Bool("version", false, "print the build stamp and exit")
	)
	flag.Parse()
	if *showVer {
		fmt.Println("sdpfloor", version.Stamp())
		return
	}

	// Validate the flag combination before touching any benchmark files so
	// mistakes fail fast with a usable message.
	if *bench != "" && (*dir != "" || *design != "") {
		log.Printf("-bench cannot be combined with -dir/-design: pick one input source")
		flag.Usage()
		os.Exit(2)
	}
	if (*dir != "") != (*design != "") {
		log.Printf("-dir and -design must be given together")
		flag.Usage()
		os.Exit(2)
	}
	if *contend != "" {
		*method = string(sdpfloor.MethodPortfolio)
	}
	if !validMethod(sdpfloor.Method(*method)) && sdpfloor.Method(*method) != sdpfloor.MethodPortfolio {
		log.Printf("unknown -method %q (valid: %v, portfolio)", *method, sdpfloor.Methods)
		os.Exit(2)
	}
	var contenders []sdpfloor.Method
	for _, name := range strings.Split(*contend, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		m := sdpfloor.Method(name)
		if !validMethod(m) {
			log.Printf("-portfolio contender %q is not a solo method (valid: %v)", name, sdpfloor.Methods)
			os.Exit(2)
		}
		contenders = append(contenders, m)
	}
	if *timeout < 0 {
		log.Printf("-timeout must be positive")
		os.Exit(2)
	}

	var d *sdpfloor.Design
	var err error
	switch {
	case *bench != "":
		d, err = sdpfloor.LoadBenchmark(*bench, *aspect, *whitespace)
	case *dir != "":
		d, err = gsrc.ReadDesign(*dir, *design)
		if err == nil && d.Outline.W() <= 0 {
			d.Outline = sdpfloor.OutlineFor(d.Netlist, *aspect, *whitespace)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		log.Fatal(err)
	}

	cfg := sdpfloor.Config{
		Outline:          d.Outline,
		Method:           sdpfloor.Method(*method),
		Seed:             *seed,
		SkipEnhancements: *basic,
	}
	cfg.Portfolio.Contenders = contenders
	if *tablePath != "" {
		tbl, err := sdpfloor.LoadPortfolioTable(*tablePath)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Portfolio.Table = tbl
	}
	if *verbose {
		cfg.Global.Logf = log.Printf
	}
	closeTrace := func() {}
	if *traceOut != "" {
		tf, err := os.Create(*traceOut)
		if err != nil {
			log.Fatal(err)
		}
		bw := bufio.NewWriter(tf)
		rec := trace.NewJSONL(bw)
		cfg.Trace = rec
		// Flushed explicitly right after the solve (not deferred): the
		// timeout path exits with status 3 and must still leave a complete
		// trace, final events included.
		closeTrace = func() {
			if err := bw.Flush(); err == nil {
				err = tf.Close()
				if err != nil {
					log.Fatal(err)
				}
			} else {
				tf.Close()
				log.Fatal(err)
			}
			if err := rec.Err(); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("trace    : %s (%d events)\n", *traceOut, rec.Lines())
		}
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	fp, err := sdpfloor.PlaceContext(ctx, d.Netlist, cfg)
	closeTrace()
	if errors.Is(err, context.DeadlineExceeded) {
		// The solver returns its last iterate as a partial result; report
		// what it reached before giving up, then exit distinctly.
		log.Printf("timed out after %s: %v", *timeout, err)
		if fp != nil && fp.GlobalResult != nil {
			gr := fp.GlobalResult
			log.Printf("partial: %d convex iterations, %d solver iterations, alpha %g, <W,Z> %.3g",
				gr.Iterations, gr.SolverIterations, gr.AlphaFinal, gr.WZ)
		}
		if fp != nil && len(fp.Portfolio) > 0 {
			log.Printf("partial: best contender %s", fp.Winner)
			for _, r := range fp.Portfolio {
				log.Printf("  %-9s %-11s hpwl %.1f", r.Name, r.Status, r.HPWL)
			}
		}
		os.Exit(exitTimeout)
	}
	if err != nil {
		log.Fatal(err)
	}
	if *socp {
		leg, err := sdpfloor.LegalizeSOCP(d.Netlist, fp.Global, d.Outline)
		if err != nil {
			log.Fatal(err)
		}
		fp.Rects, fp.Centers, fp.HPWL, fp.Feasible = leg.Rects, leg.Centers, leg.HPWL, leg.Feasible
	}

	fmt.Printf("design   : %s (%d modules, %d nets, %d pads)\n",
		d.Name, d.Netlist.N(), len(d.Netlist.Nets), len(d.Netlist.Pads))
	fmt.Printf("outline  : %.1f x %.1f (aspect 1:%g, whitespace %.0f%%)\n",
		d.Outline.W(), d.Outline.H(), *aspect, *whitespace*100)
	fmt.Printf("method   : %s\n", *method)
	fmt.Printf("HPWL     : %.1f\n", fp.HPWL)
	fmt.Printf("feasible : %v\n", fp.Feasible)
	if gr := fp.GlobalResult; gr != nil {
		fmt.Printf("convex-iteration: %d iterations, final alpha %g, rank-2 %v, <W,Z> %.3g\n",
			gr.Iterations, gr.AlphaFinal, gr.RankOK, gr.WZ)
	}
	if len(fp.Portfolio) > 0 {
		total := 0
		for _, r := range fp.Portfolio {
			total += r.Workers
		}
		fmt.Printf("portfolio: winner %s (%d contenders, %d workers split)\n",
			fp.Winner, len(fp.Portfolio), total)
		for _, r := range fp.Portfolio {
			line := fmt.Sprintf("  %-9s %-11s", r.Name, r.Status)
			if r.HPWL > 0 {
				line += fmt.Sprintf(" hpwl %.1f", r.HPWL)
			}
			fmt.Println(line)
		}
	}

	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			log.Fatal(err)
		}
		type rectJSON struct {
			Name string  `json:"name"`
			MinX float64 `json:"minX"`
			MinY float64 `json:"minY"`
			MaxX float64 `json:"maxX"`
			MaxY float64 `json:"maxY"`
		}
		out := struct {
			Design   string     `json:"design"`
			Method   string     `json:"method"`
			HPWL     float64    `json:"hpwl"`
			Feasible bool       `json:"feasible"`
			Rects    []rectJSON `json:"rects"`
		}{Design: d.Name, Method: *method, HPWL: fp.HPWL, Feasible: fp.Feasible}
		for i, r := range fp.Rects {
			out.Rects = append(out.Rects, rectJSON{
				Name: d.Netlist.Modules[i].Name,
				MinX: r.MinX, MinY: r.MinY, MaxX: r.MaxX, MaxY: r.MaxY,
			})
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			log.Fatal(err)
		}
		f.Close()
		fmt.Printf("json     : %s\n", *jsonOut)
	}

	if *svgOut != "" {
		f, err := os.Create(*svgOut)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		names := make([]string, d.Netlist.N())
		for i, m := range d.Netlist.Modules {
			names[i] = m.Name
		}
		pads := make([]sdpfloor.Point, len(d.Netlist.Pads))
		for i, p := range d.Netlist.Pads {
			pads[i] = p.Pos
		}
		if err := svg.Floorplan(f, d.Outline, fp.Rects, names, pads); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("svg      : %s\n", *svgOut)
	}
}
