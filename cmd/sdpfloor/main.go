// Command sdpfloor runs the SDP convex-iteration global floorplanner (or one
// of the baselines) on a benchmark and reports the legalized result.
//
// Usage:
//
//	sdpfloor -bench n10                 # builtin synthetic benchmark
//	sdpfloor -dir bench/ -design n10    # GSRC .blocks/.nets/.pl on disk
//	sdpfloor -dir bench/ -design ami33  # MCNC YAL (ami33.yal) — format is sniffed
//	sdpfloor -bench n30 -method ar -aspect 2 -svg out.svg -v
//	sdpfloor -bench n30 -method portfolio -timeout 30s        # tuned default race
//	sdpfloor -bench n30 -portfolio sdp,sa -timeout 30s        # explicit contender race
//	sdpfloor -bench n30 -out-pl prev.pl                       # save warm-start centers
//	sdpfloor -bench n30 -eco delta.json -prev prev.pl         # incremental (ECO) re-solve
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"sdpfloor"
	"sdpfloor/internal/svg"
	"sdpfloor/internal/trace"
	"sdpfloor/internal/version"
)

// Exit statuses: 1 for errors, 2 for usage, 3 when -timeout expired.
const exitTimeout = 3

func validMethod(m sdpfloor.Method) bool {
	for _, v := range sdpfloor.Methods {
		if m == v {
			return true
		}
	}
	return false
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("sdpfloor: ")

	var (
		bench      = flag.String("bench", "", "builtin benchmark name (n10, n30, n50, n100, n200, ami33, ami49)")
		dir        = flag.String("dir", "", "directory with <design>.blocks/.nets/.pl files")
		design     = flag.String("design", "", "design name inside -dir")
		method     = flag.String("method", "sdp", "global method: sdp, sdp-hier, ar, pp, qp, sa, analytic, portfolio")
		contend    = flag.String("portfolio", "", "comma-separated contenders to race in priority order (implies -method portfolio); empty with -method portfolio uses the per-size tuning table")
		tablePath  = flag.String("portfolio-table", "", "JSON tuning table for portfolio contender selection (default: built-in table)")
		aspect     = flag.Float64("aspect", 1, "outline height:width ratio")
		whitespace = flag.Float64("whitespace", 0.15, "outline whitespace fraction")
		seed       = flag.Int64("seed", 1, "seed for stochastic methods")
		basic      = flag.Bool("basic", false, "disable the Section IV-B enhancements (sdp only)")
		socp       = flag.Bool("socp", false, "legalize with the exact SOCP shape optimization (slow; small designs)")
		jsonOut    = flag.String("json", "", "write the result (rects, centers, HPWL) as JSON to this path")
		svgOut     = flag.String("svg", "", "write the legalized floorplan as SVG to this path")
		traceOut   = flag.String("trace", "", "write per-iteration solver telemetry as JSONL to this path (see docs/TRACING.md)")
		timeout    = flag.Duration("timeout", 0, "abort the solve after this long (0 = no limit); exits with status 3")
		ecoPath    = flag.String("eco", "", "ECO delta JSON: apply it to the input and re-solve warm from -prev (sdp only)")
		prevPl     = flag.String("prev", "", "previous placement ('name x y' lines, e.g. from -out-pl) seeding the -eco re-solve")
		outPl      = flag.String("out-pl", "", "write the global module centers as 'name x y' lines (feeds a later -prev)")
		verbose    = flag.Bool("v", false, "log solver progress")
		showVer    = flag.Bool("version", false, "print the build stamp and exit")
	)
	flag.Parse()
	if *showVer {
		fmt.Println("sdpfloor", version.Stamp())
		return
	}

	// Validate the flag combination before touching any benchmark files so
	// mistakes fail fast with a usable message.
	if *bench != "" && (*dir != "" || *design != "") {
		log.Printf("-bench cannot be combined with -dir/-design: pick one input source")
		flag.Usage()
		os.Exit(2)
	}
	if (*dir != "") != (*design != "") {
		log.Printf("-dir and -design must be given together")
		flag.Usage()
		os.Exit(2)
	}
	if *contend != "" {
		*method = string(sdpfloor.MethodPortfolio)
	}
	if !validMethod(sdpfloor.Method(*method)) && sdpfloor.Method(*method) != sdpfloor.MethodPortfolio {
		log.Printf("unknown -method %q (valid: %v, portfolio)", *method, sdpfloor.Methods)
		os.Exit(2)
	}
	var contenders []sdpfloor.Method
	for _, name := range strings.Split(*contend, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		m := sdpfloor.Method(name)
		if !validMethod(m) {
			log.Printf("-portfolio contender %q is not a solo method (valid: %v)", name, sdpfloor.Methods)
			os.Exit(2)
		}
		contenders = append(contenders, m)
	}
	if *timeout < 0 {
		log.Printf("-timeout must be positive")
		os.Exit(2)
	}
	if (*ecoPath != "") != (*prevPl != "") {
		log.Printf("-eco and -prev must be given together")
		os.Exit(2)
	}
	if *ecoPath != "" && sdpfloor.Method(*method) != sdpfloor.MethodSDP {
		log.Printf("-eco supports only -method sdp (warm re-entry needs the SDP prior)")
		os.Exit(2)
	}

	var d *sdpfloor.Design
	var err error
	switch {
	case *bench != "":
		d, err = sdpfloor.LoadBenchmark(*bench, *aspect, *whitespace)
	case *dir != "":
		// LoadDesignDir sniffs the format: MCNC YAL (<design>.yal or a
		// MODULE-leading file) or the GSRC bookshelf triple.
		d, err = sdpfloor.LoadDesignDir(*dir, *design, *aspect, *whitespace)
	default:
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		log.Fatal(err)
	}

	cfg := sdpfloor.Config{
		Outline:          d.Outline,
		Method:           sdpfloor.Method(*method),
		Seed:             *seed,
		SkipEnhancements: *basic,
	}
	cfg.Portfolio.Contenders = contenders
	if *tablePath != "" {
		tbl, err := sdpfloor.LoadPortfolioTable(*tablePath)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Portfolio.Table = tbl
	}
	if *verbose {
		cfg.Global.Logf = log.Printf
	}
	closeTrace := func() {}
	if *traceOut != "" {
		tf, err := os.Create(*traceOut)
		if err != nil {
			log.Fatal(err)
		}
		bw := bufio.NewWriter(tf)
		rec := trace.NewJSONL(bw)
		cfg.Trace = rec
		// Flushed explicitly right after the solve (not deferred): the
		// timeout path exits with status 3 and must still leave a complete
		// trace, final events included.
		closeTrace = func() {
			if err := bw.Flush(); err == nil {
				err = tf.Close()
				if err != nil {
					log.Fatal(err)
				}
			} else {
				tf.Close()
				log.Fatal(err)
			}
			if err := rec.Err(); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("trace    : %s (%d events)\n", *traceOut, rec.Lines())
		}
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	var fp *sdpfloor.Floorplan
	if *ecoPath != "" {
		fp, err = runECO(ctx, d, *ecoPath, *prevPl, cfg)
	} else {
		fp, err = sdpfloor.PlaceContext(ctx, d.Netlist, cfg)
	}
	closeTrace()
	if errors.Is(err, context.DeadlineExceeded) {
		// The solver returns its last iterate as a partial result; report
		// what it reached before giving up, then exit distinctly.
		log.Printf("timed out after %s: %v", *timeout, err)
		if fp != nil && fp.GlobalResult != nil {
			gr := fp.GlobalResult
			log.Printf("partial: %d convex iterations, %d solver iterations, alpha %g, <W,Z> %.3g",
				gr.Iterations, gr.SolverIterations, gr.AlphaFinal, gr.WZ)
		}
		if fp != nil && len(fp.Portfolio) > 0 {
			log.Printf("partial: best contender %s", fp.Winner)
			for _, r := range fp.Portfolio {
				log.Printf("  %-9s %-11s hpwl %.1f", r.Name, r.Status, r.HPWL)
			}
		}
		os.Exit(exitTimeout)
	}
	if err != nil {
		log.Fatal(err)
	}
	if *socp {
		leg, err := sdpfloor.LegalizeSOCP(d.Netlist, fp.Global, d.Outline)
		if err != nil {
			log.Fatal(err)
		}
		fp.Rects, fp.Centers, fp.HPWL, fp.Feasible = leg.Rects, leg.Centers, leg.HPWL, leg.Feasible
	}

	fmt.Printf("design   : %s (%d modules, %d nets, %d pads)\n",
		d.Name, d.Netlist.N(), len(d.Netlist.Nets), len(d.Netlist.Pads))
	fmt.Printf("outline  : %.1f x %.1f (aspect 1:%g, whitespace %.0f%%)\n",
		d.Outline.W(), d.Outline.H(), *aspect, *whitespace*100)
	fmt.Printf("method   : %s\n", *method)
	fmt.Printf("HPWL     : %.1f\n", fp.HPWL)
	fmt.Printf("feasible : %v\n", fp.Feasible)
	if gr := fp.GlobalResult; gr != nil {
		fmt.Printf("convex-iteration: %d iterations, final alpha %g, rank-2 %v, <W,Z> %.3g\n",
			gr.Iterations, gr.AlphaFinal, gr.RankOK, gr.WZ)
	}
	if inc := fp.Incremental; inc != nil {
		fmt.Printf("eco      : reused %d previous centers, seeded %d new modules\n", inc.Reused, inc.Seeded)
	}
	if len(fp.Portfolio) > 0 {
		total := 0
		for _, r := range fp.Portfolio {
			total += r.Workers
		}
		fmt.Printf("portfolio: winner %s (%d contenders, %d workers split)\n",
			fp.Winner, len(fp.Portfolio), total)
		for _, r := range fp.Portfolio {
			line := fmt.Sprintf("  %-9s %-11s", r.Name, r.Status)
			if r.HPWL > 0 {
				line += fmt.Sprintf(" hpwl %.1f", r.HPWL)
			}
			fmt.Println(line)
		}
	}

	if *outPl != "" {
		if err := writePlacement(*outPl, d, fp); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("pl       : %s\n", *outPl)
	}

	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			log.Fatal(err)
		}
		type rectJSON struct {
			Name string  `json:"name"`
			MinX float64 `json:"minX"`
			MinY float64 `json:"minY"`
			MaxX float64 `json:"maxX"`
			MaxY float64 `json:"maxY"`
		}
		out := struct {
			Design   string     `json:"design"`
			Method   string     `json:"method"`
			HPWL     float64    `json:"hpwl"`
			Feasible bool       `json:"feasible"`
			Rects    []rectJSON `json:"rects"`
		}{Design: d.Name, Method: *method, HPWL: fp.HPWL, Feasible: fp.Feasible}
		for i, r := range fp.Rects {
			out.Rects = append(out.Rects, rectJSON{
				Name: d.Netlist.Modules[i].Name,
				MinX: r.MinX, MinY: r.MinY, MaxX: r.MaxX, MaxY: r.MaxY,
			})
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			log.Fatal(err)
		}
		f.Close()
		fmt.Printf("json     : %s\n", *jsonOut)
	}

	if *svgOut != "" {
		f, err := os.Create(*svgOut)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		names := make([]string, d.Netlist.N())
		for i, m := range d.Netlist.Modules {
			names[i] = m.Name
		}
		pads := make([]sdpfloor.Point, len(d.Netlist.Pads))
		for i, p := range d.Netlist.Pads {
			pads[i] = p.Pos
		}
		if err := svg.Floorplan(f, d.Outline, fp.Rects, names, pads); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("svg      : %s\n", *svgOut)
	}
}

// runECO reads the delta and previous placement, applies the delta to the
// loaded netlist, and re-solves warm. The design is updated to the mutated
// netlist so every downstream report (-json, -svg, -out-pl) describes the
// post-ECO instance.
func runECO(ctx context.Context, d *sdpfloor.Design, ecoPath, prevPath string, cfg sdpfloor.Config) (*sdpfloor.Floorplan, error) {
	ef, err := os.Open(ecoPath)
	if err != nil {
		return nil, err
	}
	delta, err := sdpfloor.ReadDeltaJSON(bufio.NewReader(ef))
	ef.Close()
	if err != nil {
		return nil, fmt.Errorf("%s: %w", ecoPath, err)
	}
	prev, err := readPlacement(prevPath)
	if err != nil {
		return nil, err
	}
	mutated, err := delta.Apply(d.Netlist)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", ecoPath, err)
	}
	d.Netlist = mutated
	return sdpfloor.ResolveSeeded(ctx, mutated, prev, 0, cfg)
}

// readPlacement parses 'name x y' lines (comments, bookshelf banners, and
// trailing tokens like FIXED are tolerated) into named centers.
func readPlacement(path string) ([]sdpfloor.NamedPoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var out []sdpfloor.NamedPoint
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") ||
			strings.HasPrefix(line, "UCLA") || strings.HasPrefix(line, "UCSC") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 3 {
			return nil, fmt.Errorf("%s: placement line %q needs 'name x y'", path, line)
		}
		x, err1 := strconv.ParseFloat(fields[1], 64)
		y, err2 := strconv.ParseFloat(fields[2], 64)
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("%s: bad coordinates in %q", path, line)
		}
		out = append(out, sdpfloor.NamedPoint{Name: fields[0], X: x, Y: y})
	}
	return out, sc.Err()
}

// writePlacement emits the global (pre-legalization) centers as 'name x y'
// lines in shortest-round-trip float form — the warm-start food for a later
// -eco run (the SDP's own converged iterate re-enters the convex iteration
// far better than the legalizer's snapped rectangles).
func writePlacement(path string, d *sdpfloor.Design, fp *sdpfloor.Floorplan) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	fmt.Fprintf(w, "# sdpfloor global centers for %s\n", d.Name)
	for i, m := range d.Netlist.Modules {
		p := fp.Global[i]
		fmt.Fprintf(w, "%s %s %s\n", m.Name,
			strconv.FormatFloat(p.X, 'g', -1, 64), strconv.FormatFloat(p.Y, 'g', -1, 64))
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
