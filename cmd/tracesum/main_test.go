package main

import (
	"regexp"
	"strings"
	"testing"

	"sdpfloor/internal/trace"
)

// syntheticTrace renders a two-solver trace with fixed timestamps: one core
// run wrapping two IPM runs, cancellation on the second.
func syntheticTrace(t *testing.T) string {
	t.Helper()
	evs := []trace.Event{
		{TS: 0, Solver: "core", Kind: "start", Fields: []trace.Field{{Key: "n", Val: 10}}},
		{TS: 10, Solver: "ipm", Kind: "start", Fields: []trace.Field{{Key: "m", Val: 55}}},
		{TS: 1e6, Solver: "ipm", Kind: "iter", Iter: 0, Fields: []trace.Field{{Key: "mu", Val: 1.5}, {Key: "relP", Val: 0.1}}},
		{TS: 2e6, Solver: "ipm", Kind: "iter", Iter: 1, Fields: []trace.Field{{Key: "mu", Val: 0.2}, {Key: "relP", Val: 0.01}}},
		{TS: 3e6, Solver: "ipm", Kind: "final", Iter: 2, Status: "optimal", Fields: []trace.Field{{Key: "relP", Val: 1e-9}}},
		{TS: 4e6, Solver: "core", Kind: "iter", Iter: 0, Fields: []trace.Field{{Key: "alpha", Val: 0.5}, {Key: "wz", Val: 3.5}}},
		{TS: 5e6, Solver: "ipm", Kind: "start", Fields: []trace.Field{{Key: "m", Val: 55}}},
		{TS: 6e6, Solver: "ipm", Kind: "iter", Iter: 0, Fields: []trace.Field{{Key: "mu", Val: 1.1}}},
		{TS: 7e6, Solver: "ipm", Kind: "final", Iter: 1, Status: "cancelled", Fields: nil},
		{TS: 8e6, Solver: "core", Kind: "final", Iter: 1, Status: "cancelled", Fields: []trace.Field{{Key: "wz", Val: 3.5}}},
	}
	var b []byte
	for _, ev := range evs {
		b = trace.AppendJSON(b, ev)
		b = append(b, '\n')
	}
	return string(b)
}

func TestRunSummarizesPerSolver(t *testing.T) {
	var out strings.Builder
	if err := run(strings.NewReader(syntheticTrace(t)), &out, "", 0); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"10 events",
		"core", "ipm",
		"optimal:1 cancelled:1", // two ipm runs, statuses in order
		"cancelled:1",           // the core run
		"ipm, last run: 1 iterations, cancelled",
		"core, last run: 1 iterations, cancelled",
		"alpha", "wz", "mu", // convergence-table columns
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunSolverFilter(t *testing.T) {
	var out strings.Builder
	if err := run(strings.NewReader(syntheticTrace(t)), &out, "core", 0); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if strings.Contains(got, "ipm") {
		t.Errorf("-solver core output mentions ipm:\n%s", got)
	}
	if !strings.Contains(got, "core") {
		t.Errorf("-solver core output missing core:\n%s", got)
	}
}

func TestRunTailTruncatesTable(t *testing.T) {
	var b []byte
	b = append(b, []byte(`{"ts":1,"solver":"lbfgs","kind":"start","iter":0,"n":4}`+"\n")...)
	for i := 0; i < 25; i++ {
		b = trace.AppendJSON(b, trace.Event{
			TS: int64(i + 2), Solver: "lbfgs", Kind: "iter", Iter: i,
			Fields: []trace.Field{{Key: "f", Val: float64(100 - i)}},
		})
		b = append(b, '\n')
	}
	b = append(b, []byte(`{"ts":99,"solver":"lbfgs","kind":"final","iter":25,"status":"converged","f":75}`+"\n")...)

	var out strings.Builder
	if err := run(strings.NewReader(string(b)), &out, "", 5); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "(20 earlier rows omitted; -tail 5)") {
		t.Errorf("missing truncation note:\n%s", got)
	}
	// Only the last 5 iteration indices survive.
	if strings.Contains(got, "\n19  ") || !strings.Contains(got, "24") {
		t.Errorf("tail rows wrong:\n%s", got)
	}
}

func TestRunRejectsMalformedLine(t *testing.T) {
	var out strings.Builder
	err := run(strings.NewReader("{\"ts\":1,\"solver\":\"ipm\"\n"), &out, "", 0)
	if err == nil || !strings.Contains(err.Error(), "line 1") {
		t.Fatalf("want line-1 parse error, got %v", err)
	}
}

func TestRunEmptyInput(t *testing.T) {
	var out strings.Builder
	if err := run(strings.NewReader(""), &out, "", 0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "no events") {
		t.Errorf("want 'no events', got %q", out.String())
	}
}

// TestRunKeysInterleavedRunsBySolverAndRun: two concurrent runs of the
// same solver (portfolio contenders) interleave their events; each event
// must pair with the start carrying the same run id, not the most recent
// arrival. The buggy arrival-order keying attributed both runs' iters to
// run B and invented a third run for A's final.
func TestRunKeysInterleavedRunsBySolverAndRun(t *testing.T) {
	in := `{"ts":1,"solver":"ipm","run":"A","kind":"start","iter":0,"m":55}
{"ts":2,"solver":"ipm","run":"B","kind":"start","iter":0,"m":55}
{"ts":3,"solver":"ipm","run":"A","kind":"iter","iter":0,"mu":1.5}
{"ts":4,"solver":"ipm","run":"B","kind":"iter","iter":0,"mu":1.2}
{"ts":5,"solver":"ipm","run":"A","kind":"iter","iter":1,"mu":0.5}
{"ts":6,"solver":"ipm","run":"B","kind":"final","iter":1,"status":"optimal"}
{"ts":7,"solver":"ipm","run":"A","kind":"final","iter":2,"status":"cancelled"}
`
	var out strings.Builder
	if err := run(strings.NewReader(in), &out, "", 0); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !regexp.MustCompile(`ipm\s+2\s`).MatchString(got) {
		t.Errorf("want exactly 2 ipm runs:\n%s", got)
	}
	if !strings.Contains(got, "optimal:1 cancelled:1") {
		t.Errorf("statuses wrong:\n%s", got)
	}
	// The most recently started run (B) owns exactly its own iter event.
	if !strings.Contains(got, "ipm (run B), last run: 1 iterations, optimal") {
		t.Errorf("last-run attribution wrong:\n%s", got)
	}
}

// TestRunPortfolioSection: a portfolio trace gets a winner/contender table.
func TestRunPortfolioSection(t *testing.T) {
	in := `{"solver":"portfolio","kind":"start","iter":0,"contenders":2,"workers":2}
{"solver":"portfolio","run":"A","kind":"start","iter":0,"contender":0,"workers":1}
{"solver":"portfolio","run":"B","kind":"start","iter":0,"contender":1,"workers":1}
{"solver":"portfolio","run":"A","kind":"iter","iter":0,"contender":0,"complete":1,"feasible":1,"partial":0,"hpwl":100}
{"solver":"portfolio","run":"B","kind":"iter","iter":1,"contender":1,"complete":0,"feasible":0,"partial":1,"hpwl":150}
{"solver":"portfolio","run":"A","kind":"final","iter":0,"status":"won","contender":0,"feasible":1,"hpwl":100}
{"solver":"portfolio","run":"B","kind":"final","iter":1,"status":"cancelled","contender":1,"feasible":0,"hpwl":150}
{"solver":"portfolio","kind":"final","iter":2,"status":"won","winner":0,"hpwl":100,"feasible":1}
`
	var out strings.Builder
	if err := run(strings.NewReader(in), &out, "", 0); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "portfolio race: winner A (won)") {
		t.Errorf("missing race header:\n%s", got)
	}
	if !regexp.MustCompile(`A\s+won\s+100\.0\s+yes`).MatchString(got) {
		t.Errorf("winner row wrong:\n%s", got)
	}
	if !regexp.MustCompile(`B\s+cancelled\s+150\.0\s+no`).MatchString(got) {
		t.Errorf("cancelled row wrong:\n%s", got)
	}
}

// TestRunSurvivesDroppedStart mimics a ring-truncated trace: iter/final
// events whose "start" was evicted must still aggregate into a run.
func TestRunSurvivesDroppedStart(t *testing.T) {
	in := `{"ts":5,"solver":"admm","kind":"iter","iter":7,"pres":0.5}
{"ts":6,"solver":"admm","kind":"final","iter":8,"status":"optimal","pres":1e-6}
`
	var out strings.Builder
	if err := run(strings.NewReader(in), &out, "", 0); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "admm") || !strings.Contains(got, "optimal:1") {
		t.Errorf("dropped-start trace not summarized:\n%s", got)
	}
}
