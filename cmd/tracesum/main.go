// Command tracesum summarizes a solver telemetry trace — the JSONL written
// by sdpfloor -trace or fetched from floorpland's /v1/jobs/{id}/trace. It
// prints one aggregate row per solver (runs, warm-started runs, iterations,
// wall time from the event timestamps, terminal statuses), a warm-vs-cold
// iterations-to-converge comparison when a solver has both kinds of run, and
// a convergence table of each solver's most recent run.
//
// Usage:
//
//	tracesum out.jsonl
//	tracesum -solver ipm -tail 20 out.jsonl
//	sdpfloor -bench n10 -trace /dev/stdout | tracesum
package main

import (
	"bufio"
	"bytes"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"text/tabwriter"
	"time"

	"sdpfloor/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracesum: ")
	var (
		tail   = flag.Int("tail", 10, "convergence-table rows per solver (0 = all)")
		solver = flag.String("solver", "", "restrict to one solver (ipm, admm, core, lbfgs)")
	)
	flag.Parse()
	in := io.Reader(os.Stdin)
	switch flag.NArg() {
	case 0:
	case 1:
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		in = f
	default:
		log.Printf("at most one input file")
		flag.Usage()
		os.Exit(2)
	}
	if err := run(in, os.Stdout, *solver, *tail); err != nil {
		log.Fatal(err)
	}
}

// solverRun accumulates one start…final span of a single solver.
type solverRun struct {
	status  string
	iters   int
	startTS int64
	endTS   int64
	events  []trace.Event // iter events; kept only for each solver's last run
}

func (r *solverRun) wall() time.Duration {
	if r.endTS <= r.startTS {
		return 0
	}
	return time.Duration(r.endTS - r.startTS)
}

// solverAgg aggregates every run of one solver.
type solverAgg struct {
	name     string
	runs     int
	iters    int
	wall     time.Duration
	statuses []string // per closed run, in order
	last     *solverRun
	// Warm-start accounting, from the "warm" field on final events (runs
	// whose final lacks the field — older traces, the core loop — count in
	// neither bucket). Iterations-to-converge come from the final's Iter.
	warmRuns, coldRuns   int
	warmIters, coldIters int
}

// run parses the JSONL trace from in and writes the summary to out. Only
// events of the named solver count when solver is non-empty; tail bounds the
// convergence-table rows per solver (0 = unbounded).
func run(in io.Reader, out io.Writer, solver string, tail int) error {
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 64<<10), 8<<20)
	aggs := map[string]*solverAgg{}
	var order []string
	lineNo, events := 0, 0

	aggOf := func(name string) *solverAgg {
		a := aggs[name]
		if a == nil {
			a = &solverAgg{name: name}
			aggs[name] = a
			order = append(order, name)
		}
		return a
	}
	// openRun returns the solver's in-flight run, starting one when the
	// trace lacks its "start" (a ring buffer may have dropped it).
	openRun := func(a *solverAgg, ts int64) *solverRun {
		if a.last == nil || a.last.status != "" {
			a.last = &solverRun{startTS: ts, endTS: ts}
			a.runs++
		}
		return a.last
	}

	for sc.Scan() {
		lineNo++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		ev, err := trace.ParseLine(line)
		if err != nil {
			return fmt.Errorf("line %d: %w", lineNo, err)
		}
		events++
		if solver != "" && ev.Solver != solver {
			continue
		}
		a := aggOf(ev.Solver)
		switch ev.Kind {
		case trace.KindStart:
			a.last = &solverRun{startTS: ev.TS, endTS: ev.TS}
			a.runs++
		case trace.KindIter:
			r := openRun(a, ev.TS)
			r.endTS = ev.TS
			r.events = append(r.events, ev)
			a.iters++
		case trace.KindFinal:
			r := openRun(a, ev.TS)
			r.endTS = ev.TS
			r.status = ev.Status
			if r.status == "" {
				r.status = "?"
			}
			r.iters = ev.Iter
			a.wall += r.wall()
			a.statuses = append(a.statuses, r.status)
			if found, isWarm := warmOf(ev); found {
				if isWarm {
					a.warmRuns++
					a.warmIters += ev.Iter
				} else {
					a.coldRuns++
					a.coldIters += ev.Iter
				}
			}
		default:
			return fmt.Errorf("line %d: unknown event kind %q", lineNo, ev.Kind)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if events == 0 {
		fmt.Fprintln(out, "no events")
		return nil
	}

	fmt.Fprintf(out, "%d events\n\n", events)
	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "solver\truns\twarm\titers\twall\tstatuses\t")
	for _, name := range order {
		a := aggs[name]
		warm := "-"
		if a.warmRuns+a.coldRuns > 0 {
			warm = fmt.Sprintf("%d/%d", a.warmRuns, a.warmRuns+a.coldRuns)
		}
		fmt.Fprintf(tw, "%s\t%d\t%s\t%d\t%s\t%s\t\n",
			a.name, a.runs, warm, a.iters, fmtWall(a.wall), statusCounts(a.statuses))
	}
	tw.Flush()
	for _, name := range order {
		a := aggs[name]
		if a.warmRuns == 0 || a.coldRuns == 0 || a.coldIters == 0 {
			continue
		}
		aw := float64(a.warmIters) / float64(a.warmRuns)
		ac := float64(a.coldIters) / float64(a.coldRuns)
		fmt.Fprintf(out, "%s: warm runs averaged %.1f iterations to converge vs %.1f cold (%.0f%% saved)\n",
			a.name, aw, ac, (1-aw/ac)*100)
	}

	for _, name := range order {
		a := aggs[name]
		if a.last == nil || len(a.last.events) == 0 {
			continue
		}
		r := a.last
		status := r.status
		if status == "" {
			status = "unfinished"
		}
		fmt.Fprintf(out, "\n%s, last run: %d iterations, %s, %s\n",
			a.name, len(r.events), status, fmtWall(r.wall()))
		writeConvergence(out, r.events, tail)
	}
	return nil
}

// writeConvergence prints the trailing iter events as a table whose columns
// are the union of field keys in first-seen order.
func writeConvergence(out io.Writer, evs []trace.Event, tail int) {
	if tail > 0 && len(evs) > tail {
		fmt.Fprintf(out, "(%d earlier rows omitted; -tail %d)\n", len(evs)-tail, tail)
		evs = evs[len(evs)-tail:]
	}
	var cols []string
	seen := map[string]bool{}
	for _, ev := range evs {
		for _, f := range ev.Fields {
			if !seen[f.Key] {
				seen[f.Key] = true
				cols = append(cols, f.Key)
			}
		}
	}
	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprint(tw, "iter\t")
	for _, c := range cols {
		fmt.Fprintf(tw, "%s\t", c)
	}
	fmt.Fprintln(tw)
	row := map[string]float64{}
	for _, ev := range evs {
		clear(row)
		for _, f := range ev.Fields {
			row[f.Key] = f.Val
		}
		fmt.Fprintf(tw, "%d\t", ev.Iter)
		for _, c := range cols {
			if v, ok := row[c]; ok {
				fmt.Fprintf(tw, "%.4g\t", v)
			} else {
				fmt.Fprint(tw, "-\t")
			}
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
}

// warmOf reads the "warm" field of an event: found reports whether the
// field exists, isWarm whether it flags a warm-started run.
func warmOf(ev trace.Event) (found, isWarm bool) {
	for _, f := range ev.Fields {
		if f.Key == "warm" {
			return true, f.Val > 0.5
		}
	}
	return false, false
}

// fmtWall renders a TS delta; traces with stripped or synthetic timestamps
// collapse to zero and print as "-".
func fmtWall(d time.Duration) string {
	if d <= 0 {
		return "-"
	}
	switch {
	case d >= time.Second:
		return d.Round(10 * time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(10 * time.Microsecond).String()
	}
	return d.String()
}

// statusCounts renders "optimal:3 cancelled:1" in first-seen order.
func statusCounts(statuses []string) string {
	if len(statuses) == 0 {
		return "running"
	}
	counts := map[string]int{}
	var order []string
	for _, s := range statuses {
		if counts[s] == 0 {
			order = append(order, s)
		}
		counts[s]++
	}
	var b bytes.Buffer
	for i, s := range order {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s:%d", s, counts[s])
	}
	return b.String()
}
