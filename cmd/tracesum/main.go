// Command tracesum summarizes solver telemetry and job journals.
//
// For a solver trace — the JSONL written by sdpfloor -trace or fetched from
// floorpland's /v1/jobs/{id}/trace — it prints one aggregate row per solver
// (runs, warm-started runs, iterations, wall time from the event
// timestamps, terminal statuses), a warm-vs-cold iterations-to-converge
// comparison when a solver has both kinds of run, and a convergence table
// of each solver's most recent run. Concurrent runs (portfolio contenders)
// are paired with their own events via the run id, and every portfolio
// race gets a winner/contender table.
//
// For a floorpland jobstore journal (a wal-*.jsonl segment from -data-dir)
// it prints the per-job lifecycle instead: state, batch, replay count,
// queue wait, solve wall, iteration checkpoint, and error, plus aggregate
// counts. The input kind is auto-detected from the first record.
//
// Usage:
//
//	tracesum out.jsonl
//	tracesum -solver ipm -tail 20 out.jsonl
//	sdpfloor -bench n10 -trace /dev/stdout | tracesum
//	tracesum /var/lib/floorpland/wal-00000001.jsonl
package main

import (
	"bufio"
	"bytes"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"
	"text/tabwriter"
	"time"

	"sdpfloor/internal/jobstore"
	"sdpfloor/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracesum: ")
	var (
		tail   = flag.Int("tail", 10, "convergence-table rows per solver (0 = all)")
		solver = flag.String("solver", "", "restrict to one solver (ipm, admm, core, lbfgs)")
	)
	flag.Parse()
	in := io.Reader(os.Stdin)
	switch flag.NArg() {
	case 0:
	case 1:
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		in = f
	default:
		log.Printf("at most one input file")
		flag.Usage()
		os.Exit(2)
	}
	in, journal, err := sniffJournal(in)
	if err != nil {
		log.Fatal(err)
	}
	if journal {
		err = runJournal(in, os.Stdout)
	} else {
		err = run(in, os.Stdout, *solver, *tail)
	}
	if err != nil {
		log.Fatal(err)
	}
}

// sniffJournal peeks at the first non-empty line to decide whether the
// input is a jobstore journal (records carry "job" and "event" keys solver
// traces never have) and returns a reader that replays the consumed bytes.
func sniffJournal(in io.Reader) (io.Reader, bool, error) {
	br := bufio.NewReaderSize(in, 64<<10)
	var consumed bytes.Buffer
	for {
		line, err := br.ReadString('\n')
		consumed.WriteString(line)
		trimmed := strings.TrimSpace(line)
		if trimmed == "" {
			if err != nil {
				// Empty (or whitespace-only) input: either mode prints "no
				// events"; treat as a trace.
				return &consumed, false, nil
			}
			continue
		}
		_, perr := jobstore.ParseRecord([]byte(trimmed))
		return io.MultiReader(&consumed, br), perr == nil, nil
	}
}

// runJournal parses a jobstore journal from in and writes the per-job
// lifecycle summary to out.
func runJournal(in io.Reader, out io.Writer) error {
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 1<<20), 128<<20)
	red := jobstore.NewReducer()
	lineNo, records := 0, 0
	for sc.Scan() {
		lineNo++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		rec, err := jobstore.ParseRecord(line)
		if err != nil {
			// Mirror the daemon's replay: a torn tail ends the journal.
			fmt.Fprintf(out, "(stopping at line %d: %v)\n", lineNo, err)
			break
		}
		red.Apply(rec)
		records++
	}
	if err := sc.Err(); err != nil {
		return err
	}
	states := red.Snapshot()
	if len(states) == 0 {
		fmt.Fprintln(out, "no events")
		return nil
	}

	fmt.Fprintf(out, "%d journal records, %d jobs\n\n", records, len(states))
	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "job\tbatch\tstate\treplays\tqueue wait\tsolve wall\titers\terror\t")
	var counts []string
	countOf := map[string]int{}
	var totalWait, totalSolve time.Duration
	for _, st := range states {
		state := string(st.Event)
		if st.Interrupted() {
			state = "interrupted(" + state + ")"
		}
		if countOf[state] == 0 {
			counts = append(counts, state)
		}
		countOf[state]++
		wait, solve := spans(st)
		totalWait += wait
		totalSolve += solve
		batch := st.Batch
		if batch == "" {
			batch = "-"
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%d\t%s\t%s\t%d\t%s\t\n",
			st.ID, batch, state, st.Replays, fmtWall(wait), fmtWall(solve), st.Iters, clip(st.Error, 48))
	}
	tw.Flush()
	fmt.Fprintf(out, "\nstates:")
	for _, s := range counts {
		fmt.Fprintf(out, " %s:%d", s, countOf[s])
	}
	fmt.Fprintf(out, "\ntotal queue wait %s, total solve wall %s\n", fmtWall(totalWait), fmtWall(totalSolve))
	return nil
}

// spans derives a job's queue wait (submitted→started) and solve wall
// (started→finished) from its record timestamps; unstarted or unfinished
// phases report zero.
func spans(st *jobstore.JobState) (wait, solve time.Duration) {
	if st.Started > st.Submitted && st.Submitted > 0 {
		wait = time.Duration(st.Started - st.Submitted)
	}
	if st.Finished > st.Started && st.Started > 0 {
		solve = time.Duration(st.Finished - st.Started)
	}
	return wait, solve
}

func clip(s string, max int) string {
	if s == "" {
		return "-"
	}
	if len(s) > max {
		return s[:max] + "…"
	}
	return s
}

// solverRun accumulates one start…final span of a single solver.
type solverRun struct {
	status  string
	iters   int
	startTS int64
	endTS   int64
	events  []trace.Event // iter events; kept only for each solver's last run
}

func (r *solverRun) wall() time.Duration {
	if r.endTS <= r.startTS {
		return 0
	}
	return time.Duration(r.endTS - r.startTS)
}

// solverAgg aggregates every run of one solver.
type solverAgg struct {
	name     string
	runs     int
	iters    int
	wall     time.Duration
	statuses []string // per closed run, in order
	// open tracks in-flight runs keyed by the event's run id, so the
	// interleaved streams of concurrent runs (portfolio contenders) pair
	// each solver's events with the right start — never arrival order.
	open    map[string]*solverRun
	last    *solverRun // most recently started run, for the convergence table
	lastRun string     // its run id ("" for solo traces)
	// Warm-start accounting, from the "warm" field on final events (runs
	// whose final lacks the field — older traces, the core loop — count in
	// neither bucket). Iterations-to-converge come from the final's Iter.
	warmRuns, coldRuns   int
	warmIters, coldIters int
}

// contenderFinal is one portfolio contender's final event.
type contenderFinal struct {
	name     string
	status   string
	hpwl     float64
	feasible bool
}

// raceSummary is one complete portfolio race: the contender finals followed
// by the race-level final that names the winner.
type raceSummary struct {
	contenders []contenderFinal
	status     string
	winner     int
}

// run parses the JSONL trace from in and writes the summary to out. Only
// events of the named solver count when solver is non-empty; tail bounds the
// convergence-table rows per solver (0 = unbounded).
func run(in io.Reader, out io.Writer, solver string, tail int) error {
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 64<<10), 8<<20)
	aggs := map[string]*solverAgg{}
	var order []string
	lineNo, events := 0, 0

	var races []raceSummary
	var pendingContenders []contenderFinal

	aggOf := func(name string) *solverAgg {
		a := aggs[name]
		if a == nil {
			a = &solverAgg{name: name, open: map[string]*solverRun{}}
			aggs[name] = a
			order = append(order, name)
		}
		return a
	}
	startRun := func(a *solverAgg, run string, ts int64) *solverRun {
		r := &solverRun{startTS: ts, endTS: ts}
		a.open[run] = r
		a.last, a.lastRun = r, run
		a.runs++
		return r
	}
	// openRun returns the (solver, run)-keyed in-flight run, starting one
	// when the trace lacks its "start" (a ring buffer may have dropped it).
	openRun := func(a *solverAgg, run string, ts int64) *solverRun {
		if r := a.open[run]; r != nil {
			return r
		}
		return startRun(a, run, ts)
	}

	for sc.Scan() {
		lineNo++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		ev, err := trace.ParseLine(line)
		if err != nil {
			return fmt.Errorf("line %d: %w", lineNo, err)
		}
		events++
		if solver != "" && ev.Solver != solver {
			continue
		}
		a := aggOf(ev.Solver)
		switch ev.Kind {
		case trace.KindStart:
			startRun(a, ev.Run, ev.TS)
		case trace.KindIter:
			r := openRun(a, ev.Run, ev.TS)
			r.endTS = ev.TS
			r.events = append(r.events, ev)
			a.iters++
		case trace.KindFinal:
			r := openRun(a, ev.Run, ev.TS)
			delete(a.open, ev.Run)
			r.endTS = ev.TS
			r.status = ev.Status
			if r.status == "" {
				r.status = "?"
			}
			r.iters = ev.Iter
			a.wall += r.wall()
			a.statuses = append(a.statuses, r.status)
			if found, isWarm := warmOf(ev); found {
				if isWarm {
					a.warmRuns++
					a.warmIters += ev.Iter
				} else {
					a.coldRuns++
					a.coldIters += ev.Iter
				}
			}
			if ev.Solver == "portfolio" {
				if ev.Run != "" {
					pendingContenders = append(pendingContenders, contenderFinal{
						name:     ev.Run,
						status:   ev.Status,
						hpwl:     fieldOf(ev, "hpwl", 0),
						feasible: fieldOf(ev, "feasible", 0) > 0.5,
					})
				} else {
					races = append(races, raceSummary{
						contenders: pendingContenders,
						status:     ev.Status,
						winner:     int(fieldOf(ev, "winner", -1)),
					})
					pendingContenders = nil
				}
			}
		default:
			return fmt.Errorf("line %d: unknown event kind %q", lineNo, ev.Kind)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if events == 0 {
		fmt.Fprintln(out, "no events")
		return nil
	}

	fmt.Fprintf(out, "%d events\n\n", events)
	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "solver\truns\twarm\titers\twall\tstatuses\t")
	for _, name := range order {
		a := aggs[name]
		warm := "-"
		if a.warmRuns+a.coldRuns > 0 {
			warm = fmt.Sprintf("%d/%d", a.warmRuns, a.warmRuns+a.coldRuns)
		}
		fmt.Fprintf(tw, "%s\t%d\t%s\t%d\t%s\t%s\t\n",
			a.name, a.runs, warm, a.iters, fmtWall(a.wall), statusCounts(a.statuses))
	}
	tw.Flush()
	for _, name := range order {
		a := aggs[name]
		if a.warmRuns == 0 || a.coldRuns == 0 || a.coldIters == 0 {
			continue
		}
		aw := float64(a.warmIters) / float64(a.warmRuns)
		ac := float64(a.coldIters) / float64(a.coldRuns)
		fmt.Fprintf(out, "%s: warm runs averaged %.1f iterations to converge vs %.1f cold (%.0f%% saved)\n",
			a.name, aw, ac, (1-aw/ac)*100)
	}

	writeRaces(out, races)

	for _, name := range order {
		a := aggs[name]
		if a.last == nil || len(a.last.events) == 0 {
			continue
		}
		r := a.last
		status := r.status
		if status == "" {
			status = "unfinished"
		}
		label := a.name
		if a.lastRun != "" {
			label = fmt.Sprintf("%s (run %s)", a.name, a.lastRun)
		}
		fmt.Fprintf(out, "\n%s, last run: %d iterations, %s, %s\n",
			label, len(r.events), status, fmtWall(r.wall()))
		writeConvergence(out, r.events, tail)
	}
	return nil
}

// writeRaces prints one winner/contender table per portfolio race found in
// the trace.
func writeRaces(out io.Writer, races []raceSummary) {
	for _, race := range races {
		winner := "-"
		if race.winner >= 0 && race.winner < len(race.contenders) {
			winner = race.contenders[race.winner].name
		}
		fmt.Fprintf(out, "\nportfolio race: winner %s (%s)\n", winner, race.status)
		tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "contender\tstatus\thpwl\tfeasible\t")
		for _, c := range race.contenders {
			hpwl := "-"
			if c.hpwl > 0 {
				hpwl = fmt.Sprintf("%.1f", c.hpwl)
			}
			feas := "no"
			if c.feasible {
				feas = "yes"
			}
			fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t\n", c.name, c.status, hpwl, feas)
		}
		tw.Flush()
	}
}

// fieldOf reads a numeric event field, falling back to def when absent.
func fieldOf(ev trace.Event, key string, def float64) float64 {
	for _, f := range ev.Fields {
		if f.Key == key {
			return f.Val
		}
	}
	return def
}

// writeConvergence prints the trailing iter events as a table whose columns
// are the union of field keys in first-seen order.
func writeConvergence(out io.Writer, evs []trace.Event, tail int) {
	if tail > 0 && len(evs) > tail {
		fmt.Fprintf(out, "(%d earlier rows omitted; -tail %d)\n", len(evs)-tail, tail)
		evs = evs[len(evs)-tail:]
	}
	var cols []string
	seen := map[string]bool{}
	for _, ev := range evs {
		for _, f := range ev.Fields {
			if !seen[f.Key] {
				seen[f.Key] = true
				cols = append(cols, f.Key)
			}
		}
	}
	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprint(tw, "iter\t")
	for _, c := range cols {
		fmt.Fprintf(tw, "%s\t", c)
	}
	fmt.Fprintln(tw)
	row := map[string]float64{}
	for _, ev := range evs {
		clear(row)
		for _, f := range ev.Fields {
			row[f.Key] = f.Val
		}
		fmt.Fprintf(tw, "%d\t", ev.Iter)
		for _, c := range cols {
			if v, ok := row[c]; ok {
				fmt.Fprintf(tw, "%.4g\t", v)
			} else {
				fmt.Fprint(tw, "-\t")
			}
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
}

// warmOf reads the "warm" field of an event: found reports whether the
// field exists, isWarm whether it flags a warm-started run.
func warmOf(ev trace.Event) (found, isWarm bool) {
	for _, f := range ev.Fields {
		if f.Key == "warm" {
			return true, f.Val > 0.5
		}
	}
	return false, false
}

// fmtWall renders a TS delta; traces with stripped or synthetic timestamps
// collapse to zero and print as "-".
func fmtWall(d time.Duration) string {
	if d <= 0 {
		return "-"
	}
	switch {
	case d >= time.Second:
		return d.Round(10 * time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(10 * time.Microsecond).String()
	}
	return d.String()
}

// statusCounts renders "optimal:3 cancelled:1" in first-seen order.
func statusCounts(statuses []string) string {
	if len(statuses) == 0 {
		return "running"
	}
	counts := map[string]int{}
	var order []string
	for _, s := range statuses {
		if counts[s] == 0 {
			order = append(order, s)
		}
		counts[s]++
	}
	var b bytes.Buffer
	for i, s := range order {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s:%d", s, counts[s])
	}
	return b.String()
}
