// Command floorplot renders a benchmark's floorplan — as produced by each of
// the global floorplanning methods — to SVG files for visual comparison.
//
// Usage:
//
//	floorplot -bench n10 -out plots/              # all methods
//	floorplot -bench n30 -method sdp -out plots/  # one method
//	floorplot -dir bench/ -design ami33 -out plots/  # on-disk GSRC or MCNC YAL
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"sdpfloor"
	"sdpfloor/internal/svg"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("floorplot: ")

	var (
		bench      = flag.String("bench", "n10", "builtin benchmark name")
		dir        = flag.String("dir", "", "directory with a GSRC or MCNC YAL design (overrides -bench)")
		design     = flag.String("design", "", "design name inside -dir")
		method     = flag.String("method", "", "single method (default: all)")
		aspect     = flag.Float64("aspect", 1, "outline height:width ratio")
		whitespace = flag.Float64("whitespace", 0.15, "outline whitespace fraction")
		out        = flag.String("out", ".", "output directory")
		seed       = flag.Int64("seed", 1, "seed for stochastic methods")
	)
	flag.Parse()

	var d *sdpfloor.Design
	var err error
	label := *bench
	if *dir != "" {
		if *design == "" {
			log.Fatal("-dir needs -design")
		}
		d, err = sdpfloor.LoadDesignDir(*dir, *design, *aspect, *whitespace)
	} else {
		d, err = sdpfloor.LoadBenchmark(*bench, *aspect, *whitespace)
	}
	if err != nil {
		log.Fatal(err)
	}
	if *dir != "" {
		label = d.Name
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}

	methods := sdpfloor.Methods
	if *method != "" {
		methods = []sdpfloor.Method{sdpfloor.Method(*method)}
	}
	names := make([]string, d.Netlist.N())
	for i, m := range d.Netlist.Modules {
		names[i] = m.Name
	}
	pads := make([]sdpfloor.Point, len(d.Netlist.Pads))
	for i, p := range d.Netlist.Pads {
		pads[i] = p.Pos
	}

	for _, m := range methods {
		fp, err := sdpfloor.Place(d.Netlist, sdpfloor.Config{
			Outline: d.Outline, Method: m, Seed: *seed,
		})
		if err != nil {
			log.Fatalf("%s: %v", m, err)
		}
		path := filepath.Join(*out, fmt.Sprintf("%s-%s.svg", label, m))
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		if err := svg.Floorplan(f, d.Outline, fp.Rects, names, pads); err != nil {
			log.Fatal(err)
		}
		f.Close()
		fmt.Printf("%-9s HPWL %10.1f feasible=%-5v -> %s\n", m, fp.HPWL, fp.Feasible, path)
	}
}
