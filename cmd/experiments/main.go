// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -id table2          # one experiment to stdout
//	experiments -all -out results/  # everything, one file per experiment
//	SDPFLOOR_FULL=1 experiments -id table2   # paper-scale (n100/n200; hours)
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"sdpfloor/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")

	var (
		id   = flag.String("id", "", "experiment id: "+strings.Join(experiments.IDs(), ", "))
		all  = flag.Bool("all", false, "run every experiment")
		out  = flag.String("out", "", "output directory (default stdout)")
		full = flag.Bool("full", false, "paper-scale mode (same as SDPFLOOR_FULL=1)")
	)
	flag.Parse()

	mode := experiments.ModeFromEnv()
	if *full {
		mode.Full = true
	}

	run := func(eid string) {
		w := os.Stdout
		if *out != "" {
			if err := os.MkdirAll(*out, 0o755); err != nil {
				log.Fatal(err)
			}
			f, err := os.Create(filepath.Join(*out, eid+".csv"))
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			w = f
		}
		start := time.Now()
		if err := experiments.Run(eid, w, mode); err != nil {
			log.Fatalf("%s: %v", eid, err)
		}
		fmt.Fprintf(os.Stderr, "%s done in %s\n", eid, time.Since(start).Round(time.Millisecond))
		if *out != "" {
			if err := experiments.PlotCSV(eid, filepath.Join(*out, eid+".csv"), *out); err != nil {
				log.Printf("%s: svg plot: %v", eid, err)
			}
		}
	}

	switch {
	case *all:
		for _, eid := range experiments.IDs() {
			run(eid)
		}
	case *id != "":
		run(*id)
	default:
		flag.Usage()
		os.Exit(2)
	}
}
