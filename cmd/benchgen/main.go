// Command benchgen writes the synthetic GSRC/MCNC-statistics benchmarks to
// disk in the GSRC bookshelf format (.blocks/.nets/.pl).
//
// Usage:
//
//	benchgen -out bench/                    # all builtin benchmarks
//	benchgen -out bench/ -name n30 -aspect 2
//	benchgen -out bench/ -name custom -modules 40 -nets 300 -pads 100 -seed 7
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"sdpfloor/internal/gsrc"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchgen: ")

	var (
		out        = flag.String("out", ".", "output directory")
		name       = flag.String("name", "", "benchmark to generate (default: all builtins)")
		aspect     = flag.Float64("aspect", 1, "outline height:width ratio")
		whitespace = flag.Float64("whitespace", 0.15, "outline whitespace fraction")
		modules    = flag.Int("modules", 0, "custom: module count")
		nets       = flag.Int("nets", 0, "custom: net count")
		pads       = flag.Int("pads", 0, "custom: pad count")
		seed       = flag.Int64("seed", 1, "custom: generator seed")
	)
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}

	emit := func(d *gsrc.Design) {
		if err := gsrc.WriteDesign(*out, d); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s: outline %.1f x %.1f\n", d.Name, d.Outline.W(), d.Outline.H())
		fmt.Print(d.Netlist.ComputeStats())
	}

	switch {
	case *modules > 0:
		if *name == "" {
			log.Fatal("custom benchmarks need -name")
		}
		d, err := gsrc.Generate(gsrc.Spec{
			Name: *name, Modules: *modules, Nets: *nets, Pads: *pads, Seed: *seed,
		}, *aspect, *whitespace)
		if err != nil {
			log.Fatal(err)
		}
		emit(d)
	case *name != "":
		d, err := gsrc.Builtin(*name, *aspect, *whitespace)
		if err != nil {
			log.Fatal(err)
		}
		emit(d)
	default:
		for _, n := range gsrc.BuiltinNames {
			d, err := gsrc.Builtin(n, *aspect, *whitespace)
			if err != nil {
				log.Fatal(err)
			}
			emit(d)
		}
	}
}
