// Package trace is the corpus stand-in for the telemetry layer: the
// Event type tracefinal recognizes by name, field, and package suffix.
package trace

// Field is one key/value datum of an event.
type Field struct {
	Key string
	Val float64
}

// Event is one structured solver record.
type Event struct {
	TS     int64
	Solver string
	Kind   string
	Iter   int
	Status string
	Fields []Field
}

// Recorder receives solver events.
type Recorder interface {
	Enabled() bool
	Record(ev Event)
}
