// Package service sits outside the solver and seeded package sets: wall
// clocks and map iteration are fine here, but global rand stays forbidden
// module-wide.
package service

import (
	"math/rand"
	"time"
)

func stamp(m map[string]int) int64 {
	n := 0
	for range m { // maprange is scoped to solver/seeded packages: no finding
		n++
	}
	return time.Now().Unix() + int64(n) // time.Now outside solver packages: no finding
}

func jitter() float64 {
	return rand.Float64() // want detrand
}
