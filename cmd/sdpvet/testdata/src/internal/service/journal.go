package service

import "sdpvet.example/internal/jobstore"

// persist drops the journal error on the floor — internal/service is
// inside the journalerr scope, so the discard is a finding here too.
func persist(j *jobstore.Journal, rec []byte) {
	j.Append(rec) // want journalerr
}

// persistChecked propagates the error to the caller as an expression.
func persistChecked(j *jobstore.Journal, rec []byte) error {
	return j.Append(rec)
}
