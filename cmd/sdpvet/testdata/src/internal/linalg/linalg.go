// Package linalg is the corpus stand-in for the real dense kernels: just
// enough surface for arenalease to resolve Arena checkouts and releases
// by receiver type and package suffix, exactly as it does on the real
// module.
package linalg

// Dense is a dense row-major matrix.
type Dense struct {
	Rows, Cols int
	Data       []float64
}

// NewDense returns a zero r×c matrix.
func NewDense(r, c int) *Dense {
	return &Dense{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// CholWork, EigWork, and CGWork mirror the real factorization workspaces.
type CholWork struct{ n int }
type EigWork struct{ n int }
type CGWork struct{ n int }

// Arena is the shape-keyed free list the analyzer tracks leases against.
type Arena struct{ outstanding int }

// NewArena returns an empty arena.
func NewArena() *Arena { return &Arena{} }

// Mat checks out an r×c matrix.
func (a *Arena) Mat(r, c int) *Dense { a.outstanding++; return NewDense(r, c) }

// Vec checks out a vector of length n.
func (a *Arena) Vec(n int) []float64 { a.outstanding++; return make([]float64, n) }

// Chol checks out a Cholesky workspace.
func (a *Arena) Chol(n int) *CholWork { a.outstanding++; return &CholWork{n: n} }

// Eig checks out an eigendecomposition workspace.
func (a *Arena) Eig(n int) *EigWork { a.outstanding++; return &EigWork{n: n} }

// CG checks out a conjugate-gradient workspace.
func (a *Arena) CG() *CGWork { a.outstanding++; return &CGWork{} }

// Put returns a matrix.
func (a *Arena) Put(m *Dense) { a.outstanding-- }

// PutVec returns a vector.
func (a *Arena) PutVec(v []float64) { a.outstanding-- }

// PutChol returns a Cholesky workspace.
func (a *Arena) PutChol(w *CholWork) { a.outstanding-- }

// PutEig returns an eigendecomposition workspace.
func (a *Arena) PutEig(w *EigWork) { a.outstanding-- }

// PutCG returns a conjugate-gradient workspace.
func (a *Arena) PutCG(w *CGWork) { a.outstanding-- }
