// Package parallel is a sequential stand-in for the real worker pool with
// the same call signatures, so the corpus can exercise the parwrite
// analyzer without pulling the production module in.
package parallel

// For mirrors the production chunked parallel-for.
func For(workers, n, minPar int, fn func(lo, hi int)) { fn(0, n) }

// ForChunked mirrors the production chunk-indexed variant.
func ForChunked(workers, n, minPar int, fn func(chunk, lo, hi int)) { fn(0, 0, n) }

// Do mirrors the production thunk runner.
func Do(thunks ...func()) {
	for _, f := range thunks {
		f()
	}
}

// Chunks mirrors the production chunk-count helper.
func Chunks(workers, n, minPar int) int { return 1 }
