// Package jobstore is the corpus stand-in for the durability layer. Its
// error-returning functions are exactly what journalerr tracks (by
// package suffix), and the case functions below exercise every firing
// and silent shape of the analyzer.
package jobstore

import "os"

// Journal is the append-only write-ahead log.
type Journal struct{ dirty bool }

// Append appends one record.
func (j *Journal) Append(rec []byte) error { j.dirty = true; return nil }

// Sync flushes and fsyncs the journal.
func (j *Journal) Sync() error { j.dirty = false; return nil }

// Rotate starts a new segment.
func (j *Journal) Rotate() error { return nil }

// --- firing cases ---

func appendDropped(j *Journal, rec []byte) {
	j.Append(rec) // want journalerr
}

func appendBlank(j *Journal, rec []byte) {
	_ = j.Append(rec) // want journalerr
}

func syncDeferred(j *Journal) {
	defer j.Sync() // want journalerr
}

func rotateInGoroutine(j *Journal) {
	go j.Rotate() // want journalerr
}

// appendHalfChecked reads the error on one branch only: the fast path
// exits without ever looking at it.
func appendHalfChecked(j *Journal, rec []byte, fast bool) error {
	err := j.Append(rec) // want journalerr
	if fast {
		return nil
	}
	return err
}

// appendOverwritten keeps only the last iteration's error: every earlier
// one is overwritten unread.
func appendOverwritten(j *Journal, recs [][]byte) error {
	var err error
	for _, rec := range recs {
		err = j.Append(rec) // want journalerr
	}
	return err
}

// renameDropped discards a tracked file primitive's error.
func renameDropped(dir string) {
	os.Rename(dir+"/segment.0", dir+"/segment.1") // want journalerr
}

// --- silent cases ---

// removeChecked propagates a file primitive's error to the caller.
func removeChecked(path string) error {
	return os.Remove(path)
}

// appendChecked handles both calls: the first error is read on every
// path, the second propagates to the caller as an expression.
func appendChecked(j *Journal, rec []byte) error {
	if err := j.Append(rec); err != nil {
		return err
	}
	return j.Sync()
}

// appendLogged routes the error into a handler without returning it —
// the degrade-to-memory shape.
func appendLogged(j *Journal, rec []byte, logf func(string, ...any)) {
	err := j.Append(rec)
	if err != nil {
		logf("append: %v", err)
	}
}

// syncWrapped reads the error by wrapping it; the overwrite is fine
// because the read happens first.
func syncWrapped(j *Journal, check func(error) error) error {
	err := j.Sync()
	err = check(err)
	return err
}

// --- waived case ---

func appendWaived(j *Journal, rec []byte) {
	_ = j.Append(rec) //sdpvet:ignore journalerr corpus demonstration of a reasoned waiver
}
