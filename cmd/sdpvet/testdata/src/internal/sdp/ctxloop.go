package sdp

import "context"

func kernel(x float64) float64 { return x * x }

// Options mirrors the repo convention of threading cancellation through an
// options struct rather than a bare parameter.
type Options struct {
	Ctx     context.Context
	MaxIter int
}

func deadContextParam(ctx context.Context, xs []float64) float64 {
	var s float64
	for _, x := range xs { // want ctxloop
		s += kernel(x)
	}
	return s
}

func deadContextField(opt Options, xs []float64) float64 {
	var s float64
	for _, x := range xs { // want ctxloop
		s += kernel(x)
	}
	return s
}

func checkedPerIteration(ctx context.Context, xs []float64) float64 {
	var s float64
	for _, x := range xs {
		if ctx.Err() != nil {
			break
		}
		s += kernel(x)
	}
	return s
}

func forwardedContext(opt Options, xs []float64) float64 {
	var s float64
	if opt.Ctx != nil { // consulting anywhere in the body satisfies the contract
		for _, x := range xs {
			s += kernel(x)
		}
	}
	return s
}

func noModuleCalls(ctx context.Context, n int) int {
	s := 0
	for i := 0; i < n; i++ { // index arithmetic only: no finding
		s += i
	}
	return s
}
