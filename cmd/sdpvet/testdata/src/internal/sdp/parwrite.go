package sdp

import "sdpvet.example/internal/parallel"

var globalTotal float64

func sharedAccumulator(xs []float64) float64 {
	var sum float64
	parallel.For(4, len(xs), 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			sum += xs[i] // want parwrite
		}
		globalTotal += 1 // want parwrite
	})
	return sum + globalTotal
}

func sharedAppend(xs []float64) []float64 {
	var out []float64
	parallel.For(4, len(xs), 1, func(lo, hi int) {
		out = append(out, xs[lo]) // want parwrite
	})
	return out
}

func sharedCounter(xs []float64) int {
	count := 0
	parallel.Do(func() {
		count++ // want parwrite
	}, func() {
		count-- // want parwrite
	})
	return count
}

func disjointWritesAreFine(xs, ys []float64) float64 {
	n := len(xs)
	chunks := parallel.Chunks(4, n, 1)
	partials := make([]float64, chunks)
	parallel.ForChunked(4, n, 1, func(c, lo, hi int) {
		local := 0.0 // chunk-private: no finding
		for i := lo; i < hi; i++ {
			local += xs[i]
			ys[i] = xs[i] // indexed write: the sanctioned pattern
		}
		partials[c] = local // indexed write: no finding
	})
	var sum float64
	for _, p := range partials { // sequential reduce outside the closure
		sum += p
	}
	return sum
}
