package sdp

import "fmt"

// --- silent case ---

// hotClean is the shape the annotation demands: arithmetic over
// preallocated storage, nothing that touches the heap.
//
//sdpvet:hotpath
func hotClean(dst, a, b []float64) {
	for i := range dst {
		dst[i] = a[i] * b[i]
	}
}

// --- firing cases, one per construct ---

//sdpvet:hotpath
func hotMake(n int) []float64 {
	return make([]float64, n) // want hotalloc
}

//sdpvet:hotpath
func hotAppend(dst []float64, v float64) []float64 {
	return append(dst, v) // want hotalloc
}

//sdpvet:hotpath
func hotSliceLit(n int) float64 {
	weights := []float64{0.5, 0.25, 0.25} // want hotalloc
	return weights[n%3]
}

//sdpvet:hotpath
func hotMapLit(k int) string {
	names := map[int]string{0: "primal", 1: "dual"} // want hotalloc
	return names[k%2]
}

type block struct{ n int }

//sdpvet:hotpath
func hotPointerLit(n int) *block {
	return &block{n: n} // want hotalloc
}

//sdpvet:hotpath
func hotFmt(iter int) {
	fmt.Println("iter", iter) // want hotalloc
}

//sdpvet:hotpath
func hotBoxing(logf func(string, ...any), mu float64) {
	logf("mu=%v", mu) // want hotalloc
}

//sdpvet:hotpath
func hotConcat(a, b string) string {
	return a + b // want hotalloc
}

//sdpvet:hotpath
func hotStringConv(bs []byte) string {
	return string(bs) // want hotalloc
}

//sdpvet:hotpath
func hotClosure(xs []float64) float64 {
	square := func(x float64) float64 { return x * x } // want hotalloc
	return square(xs[0])
}

type dispatch struct{ fn func() }

func (d *dispatch) step() {}

//sdpvet:hotpath
func hotMethodValue(d *dispatch) {
	d.fn = d.step // want hotalloc
}

//sdpvet:hotpath
func hotSpawn(done chan struct{}) {
	go waitOn(done) // want hotalloc
}

func waitOn(ch chan struct{}) { <-ch }

// A marker outside a function doc comment is itself a finding.
// want-next hotalloc
//sdpvet:hotpath

var notAFunction int

// --- waived case ---

// hotWaived shows an annotated function with a reasoned waiver for a
// one-off allocation measured outside the gate.
//
//sdpvet:hotpath
func hotWaived(n int) []float64 {
	return make([]float64, n) //sdpvet:ignore hotalloc corpus demonstration: warm-up path measured outside the gate
}
