package sdp

import (
	"errors"

	"sdpvet.example/internal/linalg"
)

var errFail = errors.New("fail")

// globalScratch makes a lease outlive its function — the escape case.
var globalScratch *linalg.Dense

// --- firing cases ---

// leakEarlyReturn releases on the happy path but not on the error exit.
func leakEarlyReturn(a *linalg.Arena, n int, fail bool) error {
	m := a.Mat(n, n) // want arenalease
	if fail {
		return errFail
	}
	a.Put(m)
	return nil
}

// leakNoRelease never releases at all.
func leakNoRelease(a *linalg.Arena, n int) {
	v := a.Vec(n) // want arenalease
	v[0] = 1
}

// leakDiscarded drops the checkout on the floor.
func leakDiscarded(a *linalg.Arena, n int) {
	a.Mat(n, n) // want arenalease
}

// leakBlank binds the checkout to the blank identifier.
func leakBlank(a *linalg.Arena, n int) {
	_ = a.Vec(n) // want arenalease
}

// leakPanicPath releases on the normal exit but the panic path skips
// the release; only a defer covers panics.
func leakPanicPath(a *linalg.Arena, n int, bad bool) {
	w := a.Chol(n) // want arenalease
	if bad {
		panic("corrupt factorization")
	}
	a.PutChol(w)
}

// leakReassigned overwrites the lease each iteration without releasing
// the previous checkout; only the last one is ever returned.
func leakReassigned(a *linalg.Arena, n, iters int) {
	v := a.Vec(n) // want arenalease
	for i := 0; i < iters; i++ {
		v = a.Vec(n) // want arenalease
	}
	a.PutVec(v)
}

// escapeReturn hands the lease to the caller, who holds no arena.
func escapeReturn(a *linalg.Arena, n int) *linalg.Dense {
	m := a.Mat(n, n)
	return m // want arenalease
}

// escapeDirectReturn returns the checkout without ever binding it.
func escapeDirectReturn(a *linalg.Arena, n int) *linalg.Dense {
	return a.Mat(n, n) // want arenalease
}

// escapeGlobal parks the lease in package state.
func escapeGlobal(a *linalg.Arena, n int) {
	m := a.Mat(n, n)
	globalScratch = m // want arenalease
}

// escapeSend ships the lease across a channel.
func escapeSend(a *linalg.Arena, n int, ch chan []float64) {
	v := a.Vec(n)
	ch <- v // want arenalease
}

// escapeGoroutine lets a goroutine capture the lease.
func escapeGoroutine(a *linalg.Arena, n int) {
	v := a.Vec(n)
	go consume(v) // want arenalease
}

func consume(v []float64) { v[0] = 1 }

// deferInLoop releases correctly but defers pile up until the function
// returns — the checkout is held for the whole loop, not one iteration.
func deferInLoop(a *linalg.Arena, n, iters int) {
	for i := 0; i < iters; i++ {
		v := a.Vec(n)
		defer a.PutVec(v) // want arenalease
		v[0] = float64(i)
	}
}

// --- silent cases ---

// releasedDeferred is the canonical shape: the deferred release covers
// every exit, including the panic path.
func releasedDeferred(a *linalg.Arena, n int, bad bool) {
	m := a.Mat(n, n)
	defer a.Put(m)
	if bad {
		panic("covered: the deferred release still runs")
	}
	m.Data[0] = 1
}

// releasedAllPaths releases explicitly on both exits.
func releasedAllPaths(a *linalg.Arena, n int, fail bool) error {
	v := a.Vec(n)
	if fail {
		a.PutVec(v)
		return errFail
	}
	a.PutVec(v)
	return nil
}

// releasedClosure releases through a deferred closure.
func releasedClosure(a *linalg.Arena, n int) {
	w := a.Eig(n)
	defer func() {
		a.PutEig(w)
	}()
	use(w)
}

func use(w *linalg.EigWork) {}

// releasedCG covers the fifth checkout kind.
func releasedCG(a *linalg.Arena) {
	w := a.CG()
	defer a.PutCG(w)
}

// transferToField moves ownership into a longer-lived structure whose
// owner releases it; the analyzer treats the store as a transfer.
type scratch struct{ m *linalg.Dense }

func transferToField(a *linalg.Arena, st *scratch, n int) {
	st.m = a.Mat(n, n)
}

// transferLocal hands the whole lease to another variable; tracking
// follows the checkout, and the new owner releases it.
func transferLocal(a *linalg.Arena, n int) {
	v := a.Vec(n)
	w := v
	a.PutVec(w)
}

// --- waived case ---

// waivedLeak parks a lease on purpose; the waiver records why.
func waivedLeak(a *linalg.Arena, n int) {
	v := a.Vec(n) //sdpvet:ignore arenalease corpus demonstration: lease intentionally parked for the process lifetime
	v[0] = 1
}
