package sdp

import "sdpvet.example/internal/trace"

// --- firing cases ---

// startNoFinal opens a trace and never closes it.
func startNoFinal(rec trace.Recorder, on bool) {
	if on {
		rec.Record(trace.Event{Solver: "ipm", Kind: "start"}) // want tracefinal
	}
}

// finalNotDeferred emits the final inline, so the early return and any
// panic skip it.
func finalNotDeferred(rec trace.Recorder, iters int) {
	rec.Record(trace.Event{Solver: "ipm", Kind: "start"})
	for i := 0; i < iters; i++ {
		if i > 3 {
			return
		}
	}
	rec.Record(trace.Event{Solver: "ipm", Kind: "final"}) // want tracefinal
}

// doubleFinal emits a final both deferred and inline: consumers see two.
func doubleFinal(rec trace.Recorder) {
	defer rec.Record(trace.Event{Solver: "admm", Kind: "final"})
	rec.Record(trace.Event{Solver: "admm", Kind: "start"})
	rec.Record(trace.Event{Solver: "admm", Kind: "final"}) // want tracefinal
}

// twoDeferredFinals registers the final twice.
func twoDeferredFinals(rec trace.Recorder) {
	defer rec.Record(trace.Event{Solver: "admm", Kind: "final"})
	defer rec.Record(trace.Event{Solver: "admm", Kind: "final", Status: "again"}) // want tracefinal
	rec.Record(trace.Event{Solver: "admm", Kind: "start"})
}

// startBeforeDefer emits the start before the final is registered: a
// panic in between would leave the trace open.
func startBeforeDefer(rec trace.Recorder) {
	rec.Record(trace.Event{Solver: "ipm", Kind: "start"}) // want tracefinal
	defer rec.Record(trace.Event{Solver: "ipm", Kind: "final"})
}

// deferredFinalInLoop registers one final per iteration, and none at all
// when the loop runs zero times.
func deferredFinalInLoop(rec trace.Recorder, n int) {
	for i := 0; i < n; i++ {
		defer rec.Record(trace.Event{Solver: "ipm", Kind: "final"}) // want tracefinal
	}
	rec.Record(trace.Event{Solver: "ipm", Kind: "start"}) // want tracefinal
}

// --- silent cases ---

// tracedRun is the canonical contract: register the deferred final
// first, then emit the start; iter events carry no pairing obligation.
func tracedRun(rec trace.Recorder, iters int) {
	status := "running"
	if rec != nil && rec.Enabled() {
		defer func() {
			rec.Record(trace.Event{Solver: "ipm", Kind: "final", Status: status})
		}()
		rec.Record(trace.Event{Solver: "ipm", Kind: "start"})
	}
	for i := 0; i < iters; i++ {
		if rec != nil && rec.Enabled() {
			rec.Record(trace.Event{Solver: "ipm", Kind: "iter", Iter: i})
		}
		if i == 7 {
			status = "early"
			return
		}
	}
	status = "done"
}

// goroutineTrace scopes the contract per function literal: the goroutine
// body pairs its own start and final.
func goroutineTrace(rec trace.Recorder) {
	go func() {
		defer rec.Record(trace.Event{Solver: "worker", Kind: "final"})
		rec.Record(trace.Event{Solver: "worker", Kind: "start"})
	}()
}

// --- waived case ---

// waivedStart documents a start whose final is emitted by the caller.
func waivedStart(rec trace.Recorder) {
	//sdpvet:ignore tracefinal corpus demonstration: the final is emitted by the caller
	rec.Record(trace.Event{Solver: "ipm", Kind: "start"})
}
