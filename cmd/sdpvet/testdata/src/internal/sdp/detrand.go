// Package sdp seeds one positive and one negative case per analyzer in a
// directory whose module-relative path (internal/sdp) marks it as a strict
// solver package.
package sdp

import (
	"math/rand"
	"os"
	"time"
)

func entropySources() float64 {
	t := time.Now()       // want detrand
	_ = time.Since(t)     // want detrand
	_ = os.Getpid()       // want detrand
	_ = rand.Intn(10)     // want detrand
	return rand.Float64() // want detrand
}

func seededIsFine(rng *rand.Rand) float64 {
	src := rand.NewSource(7) // constructors are allowed
	r := rand.New(src)
	return r.Float64() + rng.Float64() // methods on an injected *rand.Rand are allowed
}
