package sdp

type weights map[int]float64

func mapIteration(m map[int]float64, w weights) float64 {
	var s float64
	for _, v := range m { // want maprange
		s += v
	}
	for k := range w { // want maprange
		s += float64(k)
	}
	keys := []int{1, 2, 3}
	for _, k := range keys { // slices are ordered: no finding
		s += m[k]
	}
	return s
}
