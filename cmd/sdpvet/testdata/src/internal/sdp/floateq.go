package sdp

func floatCompare(a, b float64, f float32, n int) bool {
	if a == b { // want floateq
		return true
	}
	if f != float32(a) { // want floateq
		return false
	}
	if a == 1.5 { // want floateq
		return false
	}
	if a == 0 { // exact-zero test: exempt by design
		return false
	}
	if b != 0.0 { // exact-zero test: exempt by design
		return false
	}
	const half = 0.5
	if half == 0.5 { // both constant: exempt
		return n == 3 // integers: not floateq's business
	}
	return false
}
