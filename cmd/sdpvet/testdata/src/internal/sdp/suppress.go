package sdp

func waived(a, b float64) bool {
	return a == b //sdpvet:ignore floateq corpus demonstration of a reasoned waiver
}

func waivedAbove(a, b float64) bool {
	//sdpvet:ignore floateq the comment may also sit on the line above the finding
	return a != b
}

// want-next sdpvet
//sdpvet:ignore floateq this waiver matches no finding and must itself be reported

// want-next sdpvet
//sdpvet:ignore nosuchanalyzer unknown analyzer names are malformed

// want-next sdpvet
//sdpvet:ignore floateq
