// Package anneal is a seeded-stochastic package in the corpus: global
// rand is forbidden, injected generators are the sanctioned pattern, and
// map iteration is still a determinism hazard.
package anneal

import "math/rand"

func globalDraw() float64 {
	return rand.Float64() // want detrand
}

func injectedDraw(rng *rand.Rand, m map[string]int) int {
	s := 0
	for _, v := range m { // want maprange
		s += v
	}
	return int(rng.Int63()) + s
}
