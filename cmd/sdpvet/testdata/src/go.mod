module sdpvet.example

go 1.22
