package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"sdpfloor/internal/vetkit"
)

// The golden corpus under testdata/src is its own tiny module
// (sdpvet.example) whose directory layout mirrors the real one, so the
// package-role scoping (internal/sdp = solver, internal/anneal = seeded,
// internal/service = neither) is exercised for real. Expectations live in
// the corpus files themselves:
//
//	code() // want analyzer1 analyzer2   diagnostics expected on this line
//	// want-next analyzer               diagnostic expected on the next line
//
// The test demands an exact match in both directions: every expected
// finding fires, and no unexpected finding appears.

var (
	wantRe     = regexp.MustCompile(`// want ([a-z ]+)$`)
	wantNextRe = regexp.MustCompile(`^\s*// want-next ([a-z]+)\s*$`)
)

// corpusExpectations parses want comments from every .go file under dir,
// returning "relpath:line:analyzer" keys with expected counts.
func corpusExpectations(t *testing.T, dir string) map[string]int {
	t.Helper()
	want := map[string]int{}
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		rel, _ := filepath.Rel(dir, path)
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			if m := wantRe.FindStringSubmatch(sc.Text()); m != nil {
				for _, a := range strings.Fields(m[1]) {
					want[fmt.Sprintf("%s:%d:%s", rel, line, a)]++
				}
			}
			if m := wantNextRe.FindStringSubmatch(sc.Text()); m != nil {
				want[fmt.Sprintf("%s:%d:%s", rel, line+1, m[1])]++
			}
		}
		return sc.Err()
	})
	if err != nil {
		t.Fatalf("walking corpus: %v", err)
	}
	return want
}

func TestGoldenCorpus(t *testing.T) {
	corpus := filepath.Join("testdata", "src")
	loader, err := vetkit.NewLoader(corpus)
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := loader.Load("./...")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("corpus loaded zero packages")
	}
	for _, pkg := range pkgs {
		if pkg.TypeErr != nil {
			t.Fatalf("corpus package %s failed type-check: %v", pkg.Path, pkg.TypeErr)
		}
	}

	absCorpus, err := filepath.Abs(corpus)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]int{}
	for _, d := range vetkit.Run(vetkit.DefaultConfig(), pkgs, vetkit.Analyzers()) {
		rel, err := filepath.Rel(absCorpus, d.Pos.Filename)
		if err != nil {
			t.Fatalf("diagnostic outside corpus: %v", d)
		}
		got[fmt.Sprintf("%s:%d:%s", rel, d.Pos.Line, d.Analyzer)]++
	}

	want := corpusExpectations(t, corpus)
	keys := map[string]bool{}
	for k := range got {
		keys[k] = true
	}
	for k := range want {
		keys[k] = true
	}
	sorted := make([]string, 0, len(keys))
	for k := range keys {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)
	for _, k := range sorted {
		if got[k] != want[k] {
			t.Errorf("%s: got %d findings, want %d", k, got[k], want[k])
		}
	}

	// Every analyzer must both fire somewhere and stay silent somewhere:
	// a corpus where an analyzer never fires (or fires on every line it
	// could) proves nothing.
	fired := map[string]bool{}
	for k := range want {
		fired[k[strings.LastIndex(k, ":")+1:]] = true
	}
	for _, a := range vetkit.Analyzers() {
		if !fired[a.Name] {
			t.Errorf("analyzer %s has no positive case in the corpus", a.Name)
		}
	}
	if !fired["sdpvet"] {
		t.Error("suppression checker has no positive case in the corpus")
	}
}

// TestCLI drives the sdpvet command entry point against the corpus.
func TestCLI(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-C", filepath.Join("testdata", "src"), "./..."}, &out, &errOut)
	if code != 1 {
		t.Fatalf("corpus run: exit %d, want 1\nstdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
	}
	for _, frag := range []string{
		"[detrand]", "[maprange]", "[floateq]", "[ctxloop]", "[parwrite]", "[sdpvet]",
		"[arenalease]", "[tracefinal]", "[hotalloc]", "[journalerr]",
	} {
		if !strings.Contains(out.String(), frag) {
			t.Errorf("corpus output missing %s findings:\n%s", frag, out.String())
		}
	}

	out.Reset()
	errOut.Reset()
	if code := run([]string{"-C", filepath.Join("testdata", "src"), "-analyzers", "maprange", "./internal/sdp"}, &out, &errOut); code != 1 {
		t.Fatalf("filtered run: exit %d, want 1\n%s%s", code, out.String(), errOut.String())
	}
	if strings.Contains(out.String(), "[floateq]") || !strings.Contains(out.String(), "[maprange]") {
		t.Errorf("-analyzers filter not honored:\n%s", out.String())
	}

	out.Reset()
	errOut.Reset()
	if code := run([]string{"-analyzers", "bogus"}, &out, &errOut); code != 2 {
		t.Errorf("unknown analyzer: exit %d, want 2", code)
	}

	// -json must emit a decodable array of findings with module-relative
	// paths, and nothing else on stdout.
	out.Reset()
	errOut.Reset()
	if code := run([]string{"-C", filepath.Join("testdata", "src"), "-json", "./..."}, &out, &errOut); code != 1 {
		t.Fatalf("-json run: exit %d, want 1\n%s%s", code, out.String(), errOut.String())
	}
	var findings []jsonFinding
	if err := json.Unmarshal([]byte(out.String()), &findings); err != nil {
		t.Fatalf("-json output is not a JSON array: %v\n%s", err, out.String())
	}
	if len(findings) == 0 {
		t.Fatal("-json run produced zero findings on the corpus")
	}
	for _, f := range findings {
		if f.File == "" || f.Line <= 0 || f.Analyzer == "" || f.Message == "" {
			t.Errorf("-json finding missing fields: %+v", f)
		}
		if filepath.IsAbs(f.File) {
			t.Errorf("-json finding path not module-relative: %s", f.File)
		}
	}

	// -github emits workflow commands alongside the human-readable lines.
	out.Reset()
	errOut.Reset()
	if code := run([]string{"-C", filepath.Join("testdata", "src"), "-github", "./internal/jobstore"}, &out, &errOut); code != 1 {
		t.Fatalf("-github run: exit %d, want 1\n%s%s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "::error file=internal/jobstore/journal.go,line=") {
		t.Errorf("-github output missing ::error annotations:\n%s", out.String())
	}

	out.Reset()
	errOut.Reset()
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Errorf("-list: exit %d, want 0", code)
	} else if !strings.Contains(out.String(), "detrand") {
		t.Errorf("-list output missing analyzers:\n%s", out.String())
	}
}
