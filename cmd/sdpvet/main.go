// Command sdpvet is the repository's custom static analyzer. It
// type-checks every package in the module using only the standard library
// and enforces the determinism, cancellation, and parallel-safety
// invariants the solver stack depends on but the compiler cannot see:
//
//	detrand   no global math/rand, time.Now, or os.Getpid entropy in
//	          deterministic code
//	maprange  no range-over-map in solver/seeded packages
//	floateq   no ==/!= between floats outside tests
//	ctxloop   loops in context-carrying functions must consult the context
//	parwrite  no shared-accumulator writes in parallel.For/Do closures
//
// Usage:
//
//	sdpvet [-analyzers detrand,floateq] [patterns ...]
//
// Patterns default to ./... and are resolved against the enclosing
// module. A finding can be waived with a trailing or preceding
//
//	//sdpvet:ignore <analyzer> <reason>
//
// comment; unused or malformed suppressions are themselves errors, so
// waivers cannot go stale. Exit status: 0 clean, 1 findings, 2 load or
// type-check failure. See docs/LINTING.md.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"sdpfloor/internal/vetkit"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sdpvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		only = fs.String("analyzers", "", "comma-separated subset of analyzers to run (default all)")
		list = fs.Bool("list", false, "list analyzers and exit")
		dir  = fs.String("C", ".", "directory whose module to analyze")
	)
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: sdpvet [flags] [packages ...]   (patterns like ./... resolve within the module)")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := vetkit.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-10s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		byName := map[string]*vetkit.Analyzer{}
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(stderr, "sdpvet: unknown analyzer %q (known: %s)\n",
					name, strings.Join(vetkit.AnalyzerNames(), ", "))
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	loader, err := vetkit.NewLoader(*dir)
	if err != nil {
		fmt.Fprintln(stderr, "sdpvet:", err)
		return 2
	}
	pkgs, err := loader.Load(fs.Args()...)
	if err != nil {
		fmt.Fprintln(stderr, "sdpvet:", err)
		return 2
	}

	status := 0
	analyzed := 0
	for _, pkg := range pkgs {
		switch {
		case pkg.TestOnly:
			// Test-only packages hold no production invariants; skip.
		case pkg.TypeErr != nil:
			fmt.Fprintf(stderr, "sdpvet: %s: type-check failed: %v\n", pkg.Path, pkg.TypeErr)
			status = 2
		default:
			analyzed++
		}
	}
	diags := vetkit.Run(vetkit.DefaultConfig(), pkgs, analyzers)
	for _, d := range diags {
		fmt.Fprintln(stdout, d)
	}
	if len(diags) > 0 && status == 0 {
		status = 1
	}
	if status == 0 {
		fmt.Fprintf(stdout, "sdpvet: %d packages clean (%d analyzers)\n", analyzed, len(analyzers))
	}
	return status
}
