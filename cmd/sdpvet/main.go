// Command sdpvet is the repository's custom static analyzer. It
// type-checks every package in the module using only the standard library
// and enforces the determinism, cancellation, parallel-safety, resource,
// telemetry, and durability invariants the solver stack depends on but
// the compiler cannot see:
//
//	detrand     no global math/rand, time.Now, or os.Getpid entropy in
//	            deterministic code
//	maprange    no range-over-map in solver/seeded packages
//	floateq     no ==/!= between floats outside tests
//	ctxloop     loops in context-carrying functions must consult the context
//	parwrite    no shared-accumulator writes in parallel.For/Do closures
//	arenalease  arena checkouts released on every path; no lease escapes
//	tracefinal  a trace start pairs with exactly one deferred final
//	hotalloc    //sdpvet:hotpath functions contain no allocating constructs
//	journalerr  journal/WAL write errors flow into a handler on every path
//
// The last four are path-sensitive: they run forward dataflow and
// path-avoidance searches over an intraprocedural CFG (internal/vetkit).
//
// Usage:
//
//	sdpvet [-analyzers detrand,floateq] [-json] [-github] [patterns ...]
//
// Patterns default to ./... and are resolved against the enclosing
// module. -json prints machine-readable findings (one object per finding,
// stable ordering); -github additionally emits GitHub Actions
// ::error workflow commands so findings annotate pull requests inline.
// A finding can be waived with a trailing or preceding
//
//	//sdpvet:ignore <analyzer> <reason>
//
// comment; unused or malformed suppressions are themselves errors, so
// waivers cannot go stale. Exit status: 0 clean, 1 findings, 2 load or
// type-check failure. See docs/LINTING.md.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"sdpfloor/internal/vetkit"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// jsonFinding is the -json wire form of one diagnostic. File paths are
// module-relative so output is stable across checkouts.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
	Hint     string `json:"hint,omitempty"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sdpvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		only   = fs.String("analyzers", "", "comma-separated subset of analyzers to run (default all)")
		list   = fs.Bool("list", false, "list analyzers and exit")
		dir    = fs.String("C", ".", "directory whose module to analyze")
		asJSON = fs.Bool("json", false, "print findings as a JSON array (stable ordering)")
		gitHub = fs.Bool("github", false, "also emit GitHub Actions ::error annotations")
	)
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: sdpvet [flags] [packages ...]   (patterns like ./... resolve within the module)")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := vetkit.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-11s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		byName := map[string]*vetkit.Analyzer{}
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(stderr, "sdpvet: unknown analyzer %q (known: %s)\n",
					name, strings.Join(vetkit.AnalyzerNames(), ", "))
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	loader, err := vetkit.NewLoader(*dir)
	if err != nil {
		fmt.Fprintln(stderr, "sdpvet:", err)
		return 2
	}
	pkgs, err := loader.Load(fs.Args()...)
	if err != nil {
		fmt.Fprintln(stderr, "sdpvet:", err)
		return 2
	}

	status := 0
	analyzed := 0
	for _, pkg := range pkgs {
		switch {
		case pkg.TestOnly:
			// Test-only packages hold no production invariants; skip.
		case pkg.TypeErr != nil:
			fmt.Fprintf(stderr, "sdpvet: %s: type-check failed: %v\n", pkg.Path, pkg.TypeErr)
			status = 2
		default:
			analyzed++
		}
	}
	diags := vetkit.Run(vetkit.DefaultConfig(), pkgs, analyzers)

	// relFile maps a diagnostic's absolute path to a module-relative one
	// (stable across checkouts; what GitHub annotations need).
	relFile := func(abs string) string {
		if rel, err := filepath.Rel(loader.ModuleRoot, abs); err == nil && !strings.HasPrefix(rel, "..") {
			return filepath.ToSlash(rel)
		}
		return abs
	}

	if *asJSON {
		findings := make([]jsonFinding, 0, len(diags))
		for _, d := range diags {
			findings = append(findings, jsonFinding{
				File:     relFile(d.Pos.Filename),
				Line:     d.Pos.Line,
				Col:      d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
				Hint:     d.Hint,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(stderr, "sdpvet:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if *gitHub {
		for _, d := range diags {
			// Workflow command format: newlines and the command characters
			// must be percent-escaped.
			msg := "[" + d.Analyzer + "] " + d.Message
			if d.Hint != "" {
				msg += " (" + d.Hint + ")"
			}
			fmt.Fprintf(stdout, "::error file=%s,line=%d,col=%d::%s\n",
				relFile(d.Pos.Filename), d.Pos.Line, d.Pos.Column, githubEscape(msg))
		}
	}
	if len(diags) > 0 && status == 0 {
		status = 1
	}
	if status == 0 && !*asJSON {
		fmt.Fprintf(stdout, "sdpvet: %d packages clean (%d analyzers)\n", analyzed, len(analyzers))
	}
	return status
}

// githubEscape encodes the characters GitHub workflow commands reserve.
func githubEscape(s string) string {
	s = strings.ReplaceAll(s, "%", "%25")
	s = strings.ReplaceAll(s, "\r", "%0D")
	s = strings.ReplaceAll(s, "\n", "%0A")
	return s
}
