//go:build integration

// Crash-recovery integration test: builds the real floorpland binary,
// starts it with -data-dir, submits a batch, kills the daemon with SIGKILL
// mid-solve, restarts it against the same data dir, and asserts that every
// job reaches a terminal state with nothing lost and nothing duplicated.
// Run with:
//
//	go test -tags integration ./cmd/floorpland/
//	make integration
package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

const itWorkers = 2

func buildDaemon(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "floorpland")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// startDaemon launches the binary and waits for /healthz.
func startDaemon(t *testing.T, bin, dataDir, addr string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(bin,
		"-addr", addr,
		"-data-dir", dataDir,
		"-fsync", "always",
		"-workers", fmt.Sprint(itWorkers),
		"-queue", "32",
		"-drain-timeout", "5s",
		"-v",
	)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("start daemon: %v", err)
	}
	base := "http://" + addr
	deadline := time.Now().Add(15 * time.Second)
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return cmd
			}
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			t.Fatalf("daemon never became healthy on %s", addr)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// chainNetlist returns the JSON for an n-module chain. Module count is the
// solve-time knob: the SDP convex iteration on ~16 modules runs a couple of
// seconds — long enough that a SIGKILL lands mid-solve, short enough that
// eight recovered jobs finish well inside the poll deadline.
func chainNetlist(n int) string {
	var b strings.Builder
	b.WriteString(`{"modules": [`)
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, `{"name": "m%d", "minArea": 1, "maxAspect": 3}`, i)
	}
	b.WriteString(`], "nets": [`)
	for i := 0; i+1 < n; i++ {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, `{"name": "e%d", "weight": 1, "modules": ["m%d", "m%d"]}`, i, i, i+1)
	}
	b.WriteString(`]}`)
	return b.String()
}

type jobStatus struct {
	ID      string `json:"id"`
	State   string `json:"state"`
	Error   string `json:"error"`
	Replays int    `json:"replays"`
	Batch   string `json:"batch"`
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("GET %s: decode: %v", url, err)
	}
}

func TestCrashRecoveryEndToEnd(t *testing.T) {
	bin := buildDaemon(t)
	dataDir := filepath.Join(t.TempDir(), "data")
	const addr = "127.0.0.1:18428"
	base := "http://" + addr

	daemon := startDaemon(t, bin, dataDir, addr)
	killed := false
	defer func() {
		if !killed {
			daemon.Process.Kill()
			daemon.Wait()
		}
	}()

	// One batch fanning out to 8 SDP jobs (seeds 1..8) on a netlist big
	// enough that solves take seconds.
	body := fmt.Sprintf(`{"netlist": %s, "seeds": [1,2,3,4,5,6,7,8], "timeoutSec": 120}`, chainNetlist(16))
	resp, err := http.Post(base+"/v1/batches", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var batch struct {
		ID   string      `json:"id"`
		Jobs []jobStatus `json:"jobs"`
	}
	func() {
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("batch submit: status %d", resp.StatusCode)
		}
		if err := json.NewDecoder(resp.Body).Decode(&batch); err != nil {
			t.Fatal(err)
		}
	}()
	if len(batch.Jobs) != 8 {
		t.Fatalf("batch fanned out to %d jobs, want 8", len(batch.Jobs))
	}

	// Wait until solves are actually running, then kill -9.
	deadline := time.Now().Add(30 * time.Second)
	for {
		var bst struct {
			Running int `json:"running"`
		}
		getJSON(t, base+"/v1/batches/"+batch.ID, &bst)
		if bst.Running >= itWorkers {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no jobs started running before the kill window")
		}
		time.Sleep(50 * time.Millisecond)
	}
	if err := daemon.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatalf("SIGKILL: %v", err)
	}
	daemon.Wait()
	killed = true

	// Restart on the same data dir; replay must re-enqueue the unfinished
	// jobs and every job must reach a terminal state.
	daemon2 := startDaemon(t, bin, dataDir, addr)
	defer func() {
		daemon2.Process.Signal(syscall.SIGTERM)
		done := make(chan error, 1)
		go func() { done <- daemon2.Wait() }()
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			daemon2.Process.Kill()
			<-done
		}
	}()

	terminal := map[string]bool{"done": true, "failed": true, "cancelled": true}
	deadline = time.Now().Add(5 * time.Minute)
	var jobs []jobStatus
	for {
		var list struct {
			Jobs []jobStatus `json:"jobs"`
		}
		getJSON(t, base+"/v1/jobs", &list)
		jobs = list.Jobs
		allTerminal := len(jobs) > 0
		for _, j := range jobs {
			if !terminal[j.State] {
				allTerminal = false
			}
		}
		if allTerminal {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("jobs never all terminal: %+v", jobs)
		}
		time.Sleep(200 * time.Millisecond)
	}

	// No lost jobs, no duplicates: exactly the 8 submitted IDs.
	if len(jobs) != 8 {
		t.Fatalf("after restart %d jobs, want the 8 submitted: %+v", len(jobs), jobs)
	}
	seen := map[string]int{}
	for _, j := range jobs {
		seen[j.ID]++
		if j.State != "done" {
			t.Errorf("job %s: %s (%s), want done", j.ID, j.State, j.Error)
		}
		if j.Batch != batch.ID {
			t.Errorf("job %s lost batch membership: %q", j.ID, j.Batch)
		}
	}
	for _, sub := range batch.Jobs {
		if seen[sub.ID] != 1 {
			t.Errorf("job %s appears %d times after restart, want 1", sub.ID, seen[sub.ID])
		}
	}

	// The batch aggregate survived the crash too.
	var bst struct {
		Total    int  `json:"total"`
		Done     int  `json:"done"`
		Terminal bool `json:"terminal"`
	}
	getJSON(t, base+"/v1/batches/"+batch.ID, &bst)
	if bst.Total != 8 || bst.Done != 8 || !bst.Terminal {
		t.Fatalf("batch after restart: %+v", bst)
	}

	// Replay metrics: the restarted daemon reports re-enqueued jobs.
	var metrics map[string]int64
	getJSON(t, base+"/metrics", &metrics)
	if metrics["replayed_jobs_total"] == 0 {
		t.Error("replayed_jobs_total = 0 after a mid-solve SIGKILL")
	}
	if metrics["jobs_done_total"] == 0 {
		t.Error("jobs_done_total = 0 after recovery")
	}
}
