// Command floorpland serves the floorplanner over HTTP: jobs are submitted
// as JSON netlists (singly or as batches), solved by a bounded worker pool
// with per-job timeouts, cached by content hash, and observable via
// /healthz and /metrics. With -data-dir the job table is durable: every
// state transition is appended to a write-ahead journal, and a restarted
// daemon replays the journal — finished jobs come back as history,
// interrupted ones re-run automatically.
//
// Usage:
//
//	floorpland                                # listen on :8080, GOMAXPROCS workers
//	floorpland -addr :9090 -workers 2 -v
//	floorpland -job-timeout 2m -queue 16 -cache 64
//	floorpland -data-dir /var/lib/floorpland -fsync always
//	floorpland -version
//
// On SIGTERM/SIGINT the daemon drains gracefully: it stops accepting
// submissions, gives running solves -drain-timeout to finish, journals
// whatever is still unfinished, and exits. See docs/SERVICE.md for the API
// and durability guarantees.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"sdpfloor"
	"sdpfloor/internal/jobstore"
	"sdpfloor/internal/service"
	"sdpfloor/internal/version"
)

func main() {
	log.SetFlags(log.LstdFlags)
	log.SetPrefix("floorpland: ")

	var (
		addr         = flag.String("addr", ":8080", "HTTP listen address")
		workers      = flag.Int("workers", 0, "concurrent solver goroutines (0 = GOMAXPROCS)")
		solveWork    = flag.Int("solve-workers", 0, "per-solve kernel parallelism (0 = GOMAXPROCS/workers)")
		queueDepth   = flag.Int("queue", 64, "maximum queued-but-not-running jobs")
		jobTimeout   = flag.Duration("job-timeout", 5*time.Minute, "default per-job solve timeout")
		maxTimeout   = flag.Duration("max-timeout", 30*time.Minute, "cap on per-job timeouts requested by clients")
		cacheSize    = flag.Int("cache", 128, "result cache entries")
		traceDepth   = flag.Int("trace-depth", 4096, "per-job solver-telemetry ring size (newest events kept)")
		portfolioTbl = flag.String("portfolio-defaults", "", "JSON tuning table for portfolio jobs without explicit contenders (empty = built-in table)")
		dataDir      = flag.String("data-dir", "", "journal directory for crash-safe jobs (empty = in-memory only)")
		fsyncMode    = flag.String("fsync", "interval", "journal fsync policy: always, interval, or off")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "grace for running solves on SIGTERM before they are checkpointed")
		verbose      = flag.Bool("v", false, "log job lifecycle events")
		showVersion  = flag.Bool("version", false, "print the build stamp and exit")
	)
	flag.Parse()
	if *showVersion {
		fmt.Println("floorpland", version.Stamp())
		return
	}
	if flag.NArg() > 0 {
		log.Printf("unexpected arguments: %v", flag.Args())
		flag.Usage()
		os.Exit(2)
	}

	cfg := service.Config{
		Workers:        *workers,
		SolveWorkers:   *solveWork,
		QueueDepth:     *queueDepth,
		DefaultTimeout: *jobTimeout,
		MaxTimeout:     *maxTimeout,
		CacheSize:      *cacheSize,
		TraceDepth:     *traceDepth,
	}
	if *verbose {
		cfg.Logf = log.Printf
	}
	if *portfolioTbl != "" {
		tbl, err := sdpfloor.LoadPortfolioTable(*portfolioTbl)
		if err != nil {
			log.Fatalf("portfolio defaults: %v", err)
		}
		cfg.PortfolioDefaults = tbl
	}

	if *dataDir != "" {
		mode, err := jobstore.ParseFsyncMode(*fsyncMode)
		if err != nil {
			log.Fatal(err)
		}
		journal, replay, err := jobstore.Open(jobstore.Options{
			Dir:   *dataDir,
			Fsync: mode,
			Logf:  log.Printf,
		})
		if err != nil {
			log.Fatalf("open journal: %v", err)
		}
		defer journal.Close()
		cfg.Journal = journal
		cfg.Replay = replay
	}

	s := service.New(cfg)

	srv := &http.Server{
		Addr:        *addr,
		Handler:     s.Handler(),
		ReadTimeout: 30 * time.Second,
		// No WriteTimeout: trace follow streams (?follow=1) stay open for
		// the life of a solve. Non-streaming handlers respond in
		// milliseconds and are bounded by the per-job solve timeout anyway.
	}

	errCh := make(chan error, 1)
	go func() {
		durability := "in-memory"
		if *dataDir != "" {
			durability = fmt.Sprintf("journal %s (fsync=%s)", *dataDir, *fsyncMode)
		}
		log.Printf("%s listening on %s (%d workers, queue %d, cache %d, default timeout %s, %s)",
			version.Stamp(), *addr, s.Workers(), *queueDepth, *cacheSize, *jobTimeout, durability)
		errCh <- srv.ListenAndServe()
	}()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		log.Printf("received %s, draining (grace %s)", sig, *drainTimeout)
	case err := <-errCh:
		log.Fatal(err)
	}

	// Drain the pool first: new submissions are refused (503
	// shutting_down), queued jobs stay journaled for replay, running solves
	// get the grace period, and whatever is still going at the deadline is
	// checkpointed as interrupted. Trace followers see their jobs reach a
	// terminal state and disconnect, so the HTTP shutdown afterwards is
	// quick. Without a journal Drain degrades to a graceful Close.
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		log.Printf("drain: %v", err)
	}
	httpCtx, httpCancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer httpCancel()
	if err := srv.Shutdown(httpCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("http shutdown: %v", err)
	}
	log.Printf("stopped")
}
