// Command floorpland serves the floorplanner over HTTP: jobs are submitted
// as JSON netlists, solved by a bounded worker pool with per-job timeouts,
// cached by content hash, and observable via /healthz and /metrics.
//
// Usage:
//
//	floorpland                                # listen on :8080, GOMAXPROCS workers
//	floorpland -addr :9090 -workers 2 -v
//	floorpland -job-timeout 2m -queue 16 -cache 64
//
// See docs/SERVICE.md for the API.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"sdpfloor/internal/service"
)

func main() {
	log.SetFlags(log.LstdFlags)
	log.SetPrefix("floorpland: ")

	var (
		addr       = flag.String("addr", ":8080", "HTTP listen address")
		workers    = flag.Int("workers", 0, "concurrent solver goroutines (0 = GOMAXPROCS)")
		solveWork  = flag.Int("solve-workers", 0, "per-solve kernel parallelism (0 = GOMAXPROCS/workers)")
		queueDepth = flag.Int("queue", 64, "maximum queued-but-not-running jobs")
		jobTimeout = flag.Duration("job-timeout", 5*time.Minute, "default per-job solve timeout")
		maxTimeout = flag.Duration("max-timeout", 30*time.Minute, "cap on per-job timeouts requested by clients")
		cacheSize  = flag.Int("cache", 128, "result cache entries")
		traceDepth = flag.Int("trace-depth", 4096, "per-job solver-telemetry ring size (newest events kept)")
		verbose    = flag.Bool("v", false, "log job lifecycle events")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		log.Printf("unexpected arguments: %v", flag.Args())
		flag.Usage()
		os.Exit(2)
	}

	cfg := service.Config{
		Workers:        *workers,
		SolveWorkers:   *solveWork,
		QueueDepth:     *queueDepth,
		DefaultTimeout: *jobTimeout,
		MaxTimeout:     *maxTimeout,
		CacheSize:      *cacheSize,
		TraceDepth:     *traceDepth,
	}
	if *verbose {
		cfg.Logf = log.Printf
	}
	s := service.New(cfg)

	srv := &http.Server{
		Addr:         *addr,
		Handler:      s.Handler(),
		ReadTimeout:  30 * time.Second,
		WriteTimeout: 60 * time.Second,
	}

	errCh := make(chan error, 1)
	go func() {
		log.Printf("listening on %s (%d workers, queue %d, cache %d, default timeout %s)",
			*addr, s.Workers(), *queueDepth, *cacheSize, *jobTimeout)
		errCh <- srv.ListenAndServe()
	}()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		log.Printf("received %s, shutting down", sig)
	case err := <-errCh:
		log.Fatal(err)
	}

	// Stop accepting HTTP first, then cancel in-flight solves and drain the
	// pool; solvers observe the cancellation at their next iteration.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("http shutdown: %v", err)
	}
	s.Close()
	log.Printf("stopped")
}
