// Command benchdiff runs the repository's Go benchmarks, snapshots the
// results as JSON, and compares snapshots against a committed baseline with
// a configurable tolerance — the benchmark-regression gate wired into CI.
//
// Usage:
//
//	benchdiff run -o BENCH_current.json            # run benches, write snapshot
//	benchdiff run -packages ./internal/linalg -bench 'MatMul' -o out.json
//	benchdiff parse -o out.json < bench-output.txt # snapshot existing output
//	benchdiff compare -baseline BENCH_baseline.json -current BENCH_current.json
//	benchdiff compare -tolerance 0.30 -warn-only ...
//	benchdiff compare -gate allocs ...             # exact allocs/op + B/op gate
//
// compare exits nonzero when any benchmark's ns/op regressed beyond the
// tolerance (default 25%), unless -warn-only is set; CI runs the timing gate
// with -warn-only because shared runners are noisy, so timing regressions
// surface as warnings while build/test failures stay hard. The allocation
// gate (-gate allocs) is the opposite: allocation counts are deterministic,
// so it hard-fails on ANY allocs/op or B/op growth with no tolerance and
// ignores ns/op entirely — CI runs it as a required job. Refresh the
// committed baseline with:
//
//	go run ./cmd/benchdiff run -o BENCH_baseline.json
//
// Exit status: 0 ok, 1 regression (or other failure), 2 usage, 3 the
// baseline snapshot is missing or unparsable — a setup problem, not a
// performance regression, so CI and scripts can tell "refresh the
// baseline" apart from "the code got slower".
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark's measurement.
type Result struct {
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
}

// Snapshot is the JSON document benchdiff reads and writes.
type Snapshot struct {
	GOOS       string            `json:"goos"`
	GOARCH     string            `json:"goarch"`
	GoVersion  string            `json:"go"`
	Benchmarks map[string]Result `json:"benchmarks"`
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "run":
		err = cmdRun(os.Args[2:])
	case "parse":
		err = cmdParse(os.Args[2:])
	case "compare":
		err = cmdCompare(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		var be *baselineError
		if errors.As(err, &be) {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			fmt.Fprintln(os.Stderr, "benchdiff: the baseline is missing or unreadable, not regressed; refresh it with `make bench-baseline`")
			os.Exit(3)
		}
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
}

// baselineError marks a compare failure caused by the baseline snapshot
// itself (absent or unparsable), which main maps to exit status 3 so it is
// never conflated with a benchmark regression (exit 1).
type baselineError struct{ err error }

func (e *baselineError) Error() string { return "baseline snapshot: " + e.err.Error() }
func (e *baselineError) Unwrap() error { return e.err }

func usage() {
	fmt.Fprintln(os.Stderr, "usage: benchdiff {run|parse|compare} [flags]")
	os.Exit(2)
}

// defaultPackages hold the kernel benchmarks the regression gate tracks; the
// top-level experiment benches are too heavy and too noisy for a gate.
var defaultPackages = []string{"./internal/linalg", "./internal/sdp"}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	var (
		out       = fs.String("o", "", "output snapshot path (default stdout)")
		pkgs      = fs.String("packages", strings.Join(defaultPackages, ","), "comma-separated packages to benchmark")
		benchRe   = fs.String("bench", ".", "go test -bench regex")
		benchtime = fs.String("benchtime", "1s", "go test -benchtime")
		count     = fs.Int("count", 1, "go test -count")
	)
	fs.Parse(args)

	cmdArgs := []string{"test", "-run", "^$", "-bench", *benchRe, "-benchmem",
		"-benchtime", *benchtime, "-count", strconv.Itoa(*count)}
	cmdArgs = append(cmdArgs, strings.Split(*pkgs, ",")...)
	cmd := exec.Command("go", cmdArgs...)
	var buf bytes.Buffer
	cmd.Stdout = io.MultiWriter(&buf, os.Stderr)
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		return fmt.Errorf("go test -bench: %w", err)
	}
	snap, err := parseBench(&buf)
	if err != nil {
		return err
	}
	return writeSnapshot(snap, *out)
}

func cmdParse(args []string) error {
	fs := flag.NewFlagSet("parse", flag.ExitOnError)
	out := fs.String("o", "", "output snapshot path (default stdout)")
	in := fs.String("i", "", "bench output to parse (default stdin)")
	fs.Parse(args)

	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	snap, err := parseBench(r)
	if err != nil {
		return err
	}
	return writeSnapshot(snap, *out)
}

func writeSnapshot(snap *Snapshot, path string) error {
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// benchLine matches one `go test -bench` result line, e.g.
//
//	BenchmarkMatMul/n64/w4-8   123   119097 ns/op   4408 B/op   19 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+([\d.]+) ns/op(.*)$`)

// gomaxprocsSuffix is the trailing -N the bench runner appends to names;
// stripped so snapshots from machines with different core counts compare.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// parseBench reads `go test -bench -benchmem` output into a snapshot. When a
// benchmark appears more than once (-count > 1), the minimum ns/op is kept —
// the standard noise-robust choice for regression gating.
func parseBench(r io.Reader) (*Snapshot, error) {
	snap := &Snapshot{
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GoVersion:  runtime.Version(),
		Benchmarks: map[string]Result{},
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			snap.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			snap.GOARCH = strings.TrimPrefix(line, "goarch: ")
		}
		mm := benchLine.FindStringSubmatch(line)
		if mm == nil {
			continue
		}
		name := gomaxprocsSuffix.ReplaceAllString(mm[1], "")
		iters, _ := strconv.ParseInt(mm[2], 10, 64)
		ns, err := strconv.ParseFloat(mm[3], 64)
		if err != nil {
			continue
		}
		res := Result{Iterations: iters, NsPerOp: ns}
		// Optional -benchmem columns (custom metrics are ignored).
		rest := strings.Fields(mm[4])
		for i := 0; i+1 < len(rest); i += 2 {
			v, err := strconv.ParseFloat(rest[i], 64)
			if err != nil {
				continue
			}
			switch rest[i+1] {
			case "B/op":
				res.BytesPerOp = v
			case "allocs/op":
				res.AllocsPerOp = v
			}
		}
		if prev, ok := snap.Benchmarks[name]; !ok || res.NsPerOp < prev.NsPerOp {
			snap.Benchmarks[name] = res
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(snap.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark lines found in input")
	}
	return snap, nil
}

// diffEntry is one comparison row.
type diffEntry struct {
	Name        string
	Base, Cur   float64 // ns/op
	Ratio       float64 // cur/base
	Regression  bool
	AllocGrowth float64 // cur − base allocs/op
	BytesGrowth float64 // cur − base B/op
	BaseAllocs  float64
	CurAllocs   float64
}

// compareSnapshots pairs up the two snapshots' benchmarks and flags every
// benchmark whose ns/op grew beyond the tolerance (tolerance 0.25 flags
// ratios above 1.25). Benchmarks present on only one side are reported but
// never fail the gate.
func compareSnapshots(base, cur *Snapshot, tolerance float64) (entries []diffEntry, onlyBase, onlyCur []string) {
	for name := range base.Benchmarks {
		if _, ok := cur.Benchmarks[name]; !ok {
			onlyBase = append(onlyBase, name)
		}
	}
	for name, c := range cur.Benchmarks {
		b, ok := base.Benchmarks[name]
		if !ok {
			onlyCur = append(onlyCur, name)
			continue
		}
		e := diffEntry{Name: name, Base: b.NsPerOp, Cur: c.NsPerOp,
			AllocGrowth: c.AllocsPerOp - b.AllocsPerOp,
			BytesGrowth: c.BytesPerOp - b.BytesPerOp,
			BaseAllocs:  b.AllocsPerOp, CurAllocs: c.AllocsPerOp}
		if b.NsPerOp > 0 {
			e.Ratio = c.NsPerOp / b.NsPerOp
			e.Regression = e.Ratio > 1+tolerance
		}
		entries = append(entries, e)
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Name < entries[j].Name })
	sort.Strings(onlyBase)
	sort.Strings(onlyCur)
	return entries, onlyBase, onlyCur
}

func cmdCompare(args []string) error {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	var (
		basePath  = fs.String("baseline", "BENCH_baseline.json", "baseline snapshot")
		curPath   = fs.String("current", "", "current snapshot (required)")
		tolerance = fs.Float64("tolerance", 0.25, "allowed fractional ns/op growth before a benchmark counts as regressed")
		warnOnly  = fs.Bool("warn-only", false, "report regressions but exit 0")
		gate      = fs.String("gate", "timing", "regression criterion: timing (ns/op growth beyond -tolerance) or allocs (ANY allocs/op or B/op growth, no tolerance)")
	)
	fs.Parse(args)
	if *curPath == "" {
		return fmt.Errorf("compare: -current is required")
	}
	if *gate != "timing" && *gate != "allocs" {
		return fmt.Errorf("compare: -gate must be timing or allocs, got %q", *gate)
	}
	base, err := readSnapshot(*basePath)
	if err != nil {
		return &baselineError{err}
	}
	cur, err := readSnapshot(*curPath)
	if err != nil {
		return err
	}
	if base.GOOS != cur.GOOS || base.GOARCH != cur.GOARCH {
		fmt.Printf("note: comparing %s/%s baseline against %s/%s run\n",
			base.GOOS, base.GOARCH, cur.GOOS, cur.GOARCH)
	}

	entries, onlyBase, onlyCur := compareSnapshots(base, cur, *tolerance)
	regressions := 0
	if *gate == "allocs" {
		// Allocation gate: exact, no tolerance. Allocation counts are
		// deterministic (the arena and the parallel pool recycle everything
		// in the steady state), so ANY growth in allocs/op or B/op is a real
		// regression, never noise — unlike ns/op on shared runners.
		for _, e := range entries {
			mark := " "
			if e.AllocGrowth > 0 || e.BytesGrowth > 0 {
				mark = "!"
				regressions++
			} else if e.AllocGrowth < 0 || e.BytesGrowth < 0 {
				mark = "+"
			}
			fmt.Printf("%s %-60s %10.0f -> %10.0f allocs/op  (%+.0f allocs, %+.0f B)\n",
				mark, e.Name, e.BaseAllocs, e.CurAllocs, e.AllocGrowth, e.BytesGrowth)
		}
	} else {
		for _, e := range entries {
			mark := " "
			if e.Regression {
				mark = "!"
				regressions++
			} else if e.Ratio > 0 && e.Ratio < 1-*tolerance {
				mark = "+"
			}
			fmt.Printf("%s %-60s %12.0f -> %12.0f ns/op  (%+.1f%%)\n",
				mark, e.Name, e.Base, e.Cur, 100*(e.Ratio-1))
		}
	}
	for _, n := range onlyBase {
		fmt.Printf("? %-60s only in baseline\n", n)
	}
	for _, n := range onlyCur {
		fmt.Printf("? %-60s only in current (baseline refresh needed)\n", n)
	}
	if *gate == "allocs" {
		fmt.Printf("benchdiff: %d benchmarks compared, %d regressed (alloc gate, zero tolerance)\n",
			len(entries), regressions)
		if regressions > 0 && !*warnOnly {
			return fmt.Errorf("%d benchmark(s) grew allocs/op or B/op", regressions)
		}
		return nil
	}
	fmt.Printf("benchdiff: %d benchmarks compared, %d regressed (tolerance %.0f%%)\n",
		len(entries), regressions, 100**tolerance)
	if regressions > 0 && !*warnOnly {
		return fmt.Errorf("%d benchmark(s) regressed beyond %.0f%%", regressions, 100**tolerance)
	}
	return nil
}

func readSnapshot(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if snap.Benchmarks == nil {
		return nil, fmt.Errorf("%s: no benchmarks field", path)
	}
	return &snap, nil
}
