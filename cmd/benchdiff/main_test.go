package main

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBenchOutput = `goos: linux
goarch: amd64
pkg: sdpfloor/internal/linalg
BenchmarkMatMul/n64/w1-8         	   10000	    119097 ns/op	       0 B/op	       0 allocs/op
BenchmarkMatMul/n64/w4-8         	   12000	     99097 ns/op	     144 B/op	       3 allocs/op
BenchmarkFormSchur/n100/w1-8     	     200	   6292404 ns/op	   32840 B/op	       3 allocs/op
BenchmarkSymEig/n128/w1         	     100	  10292404 ns/op
PASS
ok  	sdpfloor/internal/linalg	12.3s
`

func TestParseBench(t *testing.T) {
	snap, err := parseBench(strings.NewReader(sampleBenchOutput))
	if err != nil {
		t.Fatal(err)
	}
	if snap.GOOS != "linux" || snap.GOARCH != "amd64" {
		t.Fatalf("goos/goarch not picked up: %q/%q", snap.GOOS, snap.GOARCH)
	}
	if len(snap.Benchmarks) != 4 {
		t.Fatalf("want 4 benchmarks, got %d: %v", len(snap.Benchmarks), snap.Benchmarks)
	}
	// GOMAXPROCS suffix must be stripped.
	r, ok := snap.Benchmarks["BenchmarkMatMul/n64/w1"]
	if !ok {
		t.Fatalf("BenchmarkMatMul/n64/w1 missing (suffix not stripped?): %v", snap.Benchmarks)
	}
	if r.NsPerOp != 119097 || r.Iterations != 10000 || r.BytesPerOp != 0 || r.AllocsPerOp != 0 {
		t.Fatalf("unexpected result: %+v", r)
	}
	if r := snap.Benchmarks["BenchmarkFormSchur/n100/w1"]; r.BytesPerOp != 32840 || r.AllocsPerOp != 3 {
		t.Fatalf("benchmem columns not parsed: %+v", r)
	}
	// Line without -benchmem columns still parses.
	if r := snap.Benchmarks["BenchmarkSymEig/n128/w1"]; r.NsPerOp != 10292404 {
		t.Fatalf("no-benchmem line not parsed: %+v", r)
	}
}

func TestParseBenchKeepsMinimum(t *testing.T) {
	out := `BenchmarkX-4   100   2000 ns/op
BenchmarkX-4   100   1500 ns/op
BenchmarkX-4   100   1800 ns/op
`
	snap, err := parseBench(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if r := snap.Benchmarks["BenchmarkX"]; r.NsPerOp != 1500 {
		t.Fatalf("want minimum 1500 ns/op across -count runs, got %v", r.NsPerOp)
	}
}

func TestParseBenchEmpty(t *testing.T) {
	if _, err := parseBench(strings.NewReader("PASS\nok\n")); err == nil {
		t.Fatal("expected error for input with no benchmark lines")
	}
}

func snapOf(m map[string]Result) *Snapshot {
	return &Snapshot{GOOS: "linux", GOARCH: "amd64", Benchmarks: m}
}

func TestCompareSnapshots(t *testing.T) {
	base := snapOf(map[string]Result{
		"BenchmarkA":    {NsPerOp: 1000},
		"BenchmarkB":    {NsPerOp: 1000},
		"BenchmarkC":    {NsPerOp: 1000},
		"BenchmarkGone": {NsPerOp: 50},
	})
	cur := snapOf(map[string]Result{
		"BenchmarkA":   {NsPerOp: 1200}, // +20%: inside 25% tolerance
		"BenchmarkB":   {NsPerOp: 1300}, // +30%: regression
		"BenchmarkC":   {NsPerOp: 600},  // -40%: improvement
		"BenchmarkNew": {NsPerOp: 10},
	})
	entries, onlyBase, onlyCur := compareSnapshots(base, cur, 0.25)
	if len(entries) != 3 {
		t.Fatalf("want 3 paired entries, got %d", len(entries))
	}
	byName := map[string]diffEntry{}
	for _, e := range entries {
		byName[e.Name] = e
	}
	if byName["BenchmarkA"].Regression {
		t.Fatal("+20% flagged as regression at 25% tolerance")
	}
	if !byName["BenchmarkB"].Regression {
		t.Fatal("+30% not flagged as regression at 25% tolerance")
	}
	if byName["BenchmarkC"].Regression {
		t.Fatal("improvement flagged as regression")
	}
	if len(onlyBase) != 1 || onlyBase[0] != "BenchmarkGone" {
		t.Fatalf("onlyBase = %v", onlyBase)
	}
	if len(onlyCur) != 1 || onlyCur[0] != "BenchmarkNew" {
		t.Fatalf("onlyCur = %v", onlyCur)
	}
}

func TestCompareSnapshotsTolerance(t *testing.T) {
	base := snapOf(map[string]Result{"BenchmarkA": {NsPerOp: 1000}})
	cur := snapOf(map[string]Result{"BenchmarkA": {NsPerOp: 1200}})
	entries, _, _ := compareSnapshots(base, cur, 0.10)
	if !entries[0].Regression {
		t.Fatal("+20% must regress at 10% tolerance")
	}
	entries, _, _ = compareSnapshots(base, cur, 0.25)
	if entries[0].Regression {
		t.Fatal("+20% must pass at 25% tolerance")
	}
}

// TestCompareAllocGate pins the -gate allocs contract: any allocs/op or B/op
// growth fails with no tolerance, ns/op changes are ignored entirely, and the
// usual baselineError/warn-only semantics carry over unchanged.
func TestCompareAllocGate(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	base := write("base.json", `{"goos":"linux","goarch":"amd64","benchmarks":{
		"BenchmarkA":{"iterations":1,"ns_per_op":100,"bytes_per_op":64,"allocs_per_op":2},
		"BenchmarkB":{"iterations":1,"ns_per_op":100}}}`)

	// Much slower but allocation-identical: the alloc gate must pass.
	slowSame := write("slow.json", `{"goos":"linux","goarch":"amd64","benchmarks":{
		"BenchmarkA":{"iterations":1,"ns_per_op":900,"bytes_per_op":64,"allocs_per_op":2},
		"BenchmarkB":{"iterations":1,"ns_per_op":900}}}`)
	if err := cmdCompare([]string{"-gate", "allocs", "-baseline", base, "-current", slowSame}); err != nil {
		t.Fatalf("alloc gate failed on a timing-only change: %v", err)
	}

	// One extra alloc/op, even faster: hard failure, plain error (exit 1).
	oneMore := write("onemore.json", `{"goos":"linux","goarch":"amd64","benchmarks":{
		"BenchmarkA":{"iterations":1,"ns_per_op":50,"bytes_per_op":64,"allocs_per_op":3},
		"BenchmarkB":{"iterations":1,"ns_per_op":50}}}`)
	err := cmdCompare([]string{"-gate", "allocs", "-baseline", base, "-current", oneMore})
	var be *baselineError
	if err == nil || errors.As(err, &be) {
		t.Fatalf("allocs/op growth: err = %v, want plain regression error", err)
	}
	if !strings.Contains(err.Error(), "allocs/op") {
		t.Fatalf("alloc regression error text: %v", err)
	}

	// Bytes growth alone (same alloc count) also fails.
	moreBytes := write("morebytes.json", `{"goos":"linux","goarch":"amd64","benchmarks":{
		"BenchmarkA":{"iterations":1,"ns_per_op":100,"bytes_per_op":128,"allocs_per_op":2},
		"BenchmarkB":{"iterations":1,"ns_per_op":100}}}`)
	if err := cmdCompare([]string{"-gate", "allocs", "-baseline", base, "-current", moreBytes}); err == nil {
		t.Fatal("B/op growth passed the alloc gate")
	}

	// -warn-only downgrades the failure to exit 0, as with the timing gate.
	if err := cmdCompare([]string{"-gate", "allocs", "-warn-only", "-baseline", base, "-current", oneMore}); err != nil {
		t.Fatalf("-warn-only alloc gate: %v", err)
	}

	// Fewer allocations must pass (improvements never fail the gate).
	fewer := write("fewer.json", `{"goos":"linux","goarch":"amd64","benchmarks":{
		"BenchmarkA":{"iterations":1,"ns_per_op":100,"bytes_per_op":0,"allocs_per_op":0},
		"BenchmarkB":{"iterations":1,"ns_per_op":100}}}`)
	if err := cmdCompare([]string{"-gate", "allocs", "-baseline", base, "-current", fewer}); err != nil {
		t.Fatalf("alloc improvement failed the gate: %v", err)
	}

	// Missing baseline keeps the exit-3 classification under -gate allocs.
	err = cmdCompare([]string{"-gate", "allocs", "-baseline", filepath.Join(dir, "nope.json"), "-current", slowSame})
	if err == nil || !errors.As(err, &be) {
		t.Fatalf("missing baseline under -gate allocs: err = %v, want *baselineError", err)
	}

	// An unknown gate name is rejected up front.
	if err := cmdCompare([]string{"-gate", "nonsense", "-baseline", base, "-current", slowSame}); err == nil {
		t.Fatal("unknown -gate value accepted")
	}
}

// TestCompareBaselineErrors pins the exit-status contract: a missing or
// unparsable baseline is a *baselineError (exit 3 in main), never conflated
// with a regression or an ordinary failure (exit 1).
func TestCompareBaselineErrors(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	goodCur := write("cur.json", `{"goos":"linux","goarch":"amd64","benchmarks":{"BenchmarkA":{"iterations":1,"ns_per_op":100}}}`)

	var be *baselineError

	err := cmdCompare([]string{"-baseline", filepath.Join(dir, "nope.json"), "-current", goodCur})
	if err == nil || !errors.As(err, &be) {
		t.Fatalf("missing baseline: err = %v, want *baselineError", err)
	}

	badBase := write("bad.json", `{not json`)
	err = cmdCompare([]string{"-baseline", badBase, "-current", goodCur})
	if err == nil || !errors.As(err, &be) {
		t.Fatalf("unparsable baseline: err = %v, want *baselineError", err)
	}

	noBench := write("nobench.json", `{"goos":"linux"}`)
	err = cmdCompare([]string{"-baseline", noBench, "-current", goodCur})
	if err == nil || !errors.As(err, &be) {
		t.Fatalf("baseline without benchmarks field: err = %v, want *baselineError", err)
	}

	// A broken *current* snapshot is the ordinary failure path, not a
	// baseline problem.
	goodBase := write("base.json", `{"goos":"linux","goarch":"amd64","benchmarks":{"BenchmarkA":{"iterations":1,"ns_per_op":100}}}`)
	err = cmdCompare([]string{"-baseline", goodBase, "-current", filepath.Join(dir, "nope.json")})
	if err == nil || errors.As(err, &be) {
		t.Fatalf("missing current: err = %v, want plain error", err)
	}

	// A genuine regression is also a plain error.
	slowCur := write("slow.json", `{"goos":"linux","goarch":"amd64","benchmarks":{"BenchmarkA":{"iterations":1,"ns_per_op":200}}}`)
	err = cmdCompare([]string{"-baseline", goodBase, "-current", slowCur})
	if err == nil || errors.As(err, &be) {
		t.Fatalf("regression: err = %v, want plain regression error", err)
	}
	if !strings.Contains(err.Error(), "regressed") {
		t.Fatalf("regression error text: %v", err)
	}
}
