package sdpfloor_test

import (
	"fmt"
	"strings"

	"sdpfloor"
)

// ExamplePlace runs the full pipeline — SDP convex-iteration global
// floorplanning followed by legalization — on a tiny hand-built design.
func ExamplePlace() {
	nl := &sdpfloor.Netlist{
		Modules: []sdpfloor.Module{
			{Name: "a", MinArea: 4, MaxAspect: 2},
			{Name: "b", MinArea: 4, MaxAspect: 2},
		},
		Pads: []sdpfloor.Pad{
			{Name: "west", Pos: sdpfloor.Point{X: 0, Y: 2}},
			{Name: "east", Pos: sdpfloor.Point{X: 8, Y: 2}},
		},
		Nets: []sdpfloor.Net{
			{Name: "ab", Weight: 2, Modules: []int{0, 1}},
			{Name: "wa", Weight: 1, Modules: []int{0}, Pads: []int{0}},
			{Name: "be", Weight: 1, Modules: []int{1}, Pads: []int{1}},
		},
	}
	fp, err := sdpfloor.Place(nl, sdpfloor.Config{
		Outline: sdpfloor.Rect{MinX: 0, MinY: 0, MaxX: 8, MaxY: 4},
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	// The pads order the two modules west-to-east.
	fmt.Println("feasible:", fp.Feasible)
	fmt.Println("a left of b:", fp.Centers[0].X < fp.Centers[1].X)
	// Output:
	// feasible: true
	// a left of b: true
}

// ExampleOutlineFor derives a fixed outline from a netlist's total area.
func ExampleOutlineFor() {
	nl := &sdpfloor.Netlist{
		Modules: []sdpfloor.Module{
			{Name: "a", MinArea: 50, MaxAspect: 3},
			{Name: "b", MinArea: 50, MaxAspect: 3},
		},
		Nets: []sdpfloor.Net{{Name: "n", Weight: 1, Modules: []int{0, 1}}},
	}
	out := sdpfloor.OutlineFor(nl, 2, 0.15) // height:width = 2, 15% whitespace
	fmt.Printf("area %.0f, H/W %.0f\n", out.Area(), out.H()/out.W())
	// Output:
	// area 115, H/W 2
}

// ExampleReadNetlistJSON loads a design from the JSON schema.
func ExampleReadNetlistJSON() {
	const design = `{
	  "modules": [
	    {"name": "core", "minArea": 9},
	    {"name": "mem",  "minArea": 6, "maxAspect": 2}
	  ],
	  "pads": [{"name": "clk", "pos": [0, 0]}],
	  "nets": [
	    {"name": "bus", "weight": 2, "modules": ["core", "mem"]},
	    {"name": "ck",  "modules": ["core"], "pads": ["clk"]}
	  ]
	}`
	nl, err := sdpfloor.ReadNetlistJSON(strings.NewReader(design))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(len(nl.Modules), "modules,", len(nl.Nets), "nets")
	fmt.Println("total area:", nl.TotalArea())
	// Output:
	// 2 modules, 2 nets
	// total area: 15
}
